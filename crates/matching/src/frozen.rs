//! Frozen, data-oriented match kernel.
//!
//! [`FrozenIndex`] is an immutable compilation of a
//! [`SubscriptionIndex`]: every string is interned into a dense `u32`
//! symbol ([`SymbolTable`]), the nested hash-map buckets become flat CSR
//! arrays binary-searched by packed integer keys, and the counting state
//! becomes epoch-stamped u64 bitsets so the common subscription shapes
//! never touch a per-subscription counter:
//!
//! * **Singles** (one predicate — the common case): ordinal bits in a u64
//!   bitset; a satisfied predicate is one `OR`, a match is a set bit, a
//!   count is a popcount.
//! * **Doubles** (two predicates): two parallel bitsets, one per predicate
//!   slot; a match is `slot0 & slot1` per word.
//! * **Multis** (three or more): classic epoch-stamped counters, exactly
//!   like the mutable index.
//!
//! Bitset words and counters are epoch-stamped and reset lazily on first
//! touch, so a match clears nothing and allocates nothing: the hot loop is
//! integer binary searches plus word ORs. Numeric range predicates are laid
//! out as parallel SoA arrays (`lo[]`, `hi[]`, `tok[]`) scanned with a
//! branch-free bounds test the compiler can vectorize.
//!
//! Content is symbolized **once per publish** into a [`SymView`] (owned by
//! the caller's [`MatchScratch`]) and then matched against any number of
//! frozen indexes sharing the same table — which is how the broker
//! evaluates one publication against every proxy's subscription set with
//! zero string hashing in the loop.
//!
//! The mutable [`SubscriptionIndex`] stays the build-time front end:
//! freeze once after synthesis, rebuild on (rare) subscription churn.

use crate::symbol::NO_SYM;
use crate::{
    Content, MatchScratch, Op, Subscription, SubscriptionId, SubscriptionIndex, SymbolTable, Value,
};

/// A content descriptor translated into symbol space: attribute names and
/// string values replaced by their [`SymbolTable`] symbols, tags flattened
/// into a sorted symbol slice, string bytes copied into one reusable
/// buffer (prefix predicates still need them). Attributes whose name no
/// predicate interned are dropped — nothing can match them.
///
/// A view is plain owned data with no lifetime ties, so one lives inside
/// each [`MatchScratch`] and is rebuilt (allocation-free after warm-up)
/// per publish via [`MatchScratch::symbolize`].
#[derive(Debug, Clone, Default)]
pub struct SymView {
    attrs: Vec<SymAttr>,
    tag_syms: Vec<u32>,
    str_buf: String,
}

#[derive(Debug, Clone)]
struct SymAttr {
    name_sym: u32,
    val: SymVal,
}

#[derive(Debug, Clone)]
enum SymVal {
    Int(i64),
    /// `sym` is [`NO_SYM`] when no predicate interned the string; the byte
    /// range into [`SymView::str_buf`] serves prefix predicates.
    Str {
        sym: u32,
        start: u32,
        end: u32,
    },
    /// Sorted interned tag symbols in `tag_syms[start..end]`; `total` is
    /// the full tag count including uninterned ones (set-equality needs
    /// it).
    Tags {
        start: u32,
        end: u32,
        total: u32,
    },
}

impl SymView {
    fn symbolize(&mut self, table: &SymbolTable, content: &Content) {
        self.attrs.clear();
        self.tag_syms.clear();
        self.str_buf.clear();
        for (name, value) in content.iter() {
            let Some(name_sym) = table.name_sym(name) else {
                continue;
            };
            let val = match value {
                Value::Int(i) => SymVal::Int(*i),
                Value::Str(s) => {
                    let start = self.str_buf.len() as u32;
                    self.str_buf.push_str(s);
                    SymVal::Str {
                        sym: table.string_sym(s).unwrap_or(NO_SYM),
                        start,
                        end: self.str_buf.len() as u32,
                    }
                }
                Value::Tags(tags) => {
                    let start = self.tag_syms.len() as u32;
                    for tag in tags {
                        if let Some(sym) = table.string_sym(tag) {
                            self.tag_syms.push(sym);
                        }
                    }
                    self.tag_syms[start as usize..].sort_unstable();
                    SymVal::Tags {
                        start,
                        end: self.tag_syms.len() as u32,
                        total: tags.len() as u32,
                    }
                }
            };
            self.attrs.push(SymAttr { name_sym, val });
        }
    }
}

/// Epoch-stamped bitset/counter state for the frozen kernel, embedded in
/// [`MatchScratch`]. Words and counters are live only when their stamp
/// equals the current epoch; a new match bumps the epoch in O(1) and
/// resets each word lazily on first touch.
#[derive(Debug, Clone, Default)]
pub(crate) struct FrozenScratch {
    epoch: u32,
    /// Singles: one bit per single-predicate subscription.
    s_words: Vec<u64>,
    s_stamp: Vec<u32>,
    s_touched: Vec<u32>,
    /// Doubles: one bit per two-predicate subscription, per slot.
    d0_words: Vec<u64>,
    d1_words: Vec<u64>,
    d_stamp: Vec<u32>,
    d_touched: Vec<u32>,
    /// Multis: classic satisfied-predicate counters.
    m_counts: Vec<u32>,
    m_stamp: Vec<u32>,
    m_touched: Vec<u32>,
    view: SymView,
}

impl FrozenScratch {
    fn begin(&mut self, s_words: usize, d_words: usize, multis: usize) {
        if self.s_stamp.len() < s_words {
            self.s_stamp.resize(s_words, 0);
            self.s_words.resize(s_words, 0);
        }
        if self.d_stamp.len() < d_words {
            self.d_stamp.resize(d_words, 0);
            self.d0_words.resize(d_words, 0);
            self.d1_words.resize(d_words, 0);
        }
        if self.m_stamp.len() < multis {
            self.m_stamp.resize(multis, 0);
            self.m_counts.resize(multis, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: every stamp is stale, reset them all once.
            self.s_stamp.fill(0);
            self.d_stamp.fill(0);
            self.m_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.s_touched.clear();
        self.d_touched.clear();
        self.m_touched.clear();
    }
}

impl MatchScratch {
    /// Translates `content` into symbol space against `table`, storing the
    /// view in this scratch. One symbolization serves any number of
    /// [`FrozenIndex::matches_view_into`] /
    /// [`FrozenIndex::match_count_view`] calls against indexes frozen with
    /// the same table — the broker's per-publish fan-out symbolizes once
    /// and matches every proxy.
    pub fn symbolize(&mut self, table: &SymbolTable, content: &Content) {
        self.frozen.view.symbolize(table, content);
    }
}

/// A compiled predicate for operator classes too rare or irregular for a
/// dedicated bucket array (inequality, prefix, whole-set equality). All
/// operands are pre-symbolized or copied into index-owned buffers, so
/// evaluation still never touches the original strings.
#[derive(Debug, Clone)]
enum MiscOp {
    /// `attr != x` for integers.
    NeInt(i64),
    /// `attr != s` by symbol (an uninterned content string is trivially
    /// unequal).
    NeStr(u32),
    /// `attr != {tags}` — operand in `misc_tag_syms[start..end]`, sorted.
    NeTags { start: u32, end: u32 },
    /// `attr == {tags}` (whole-set equality) — same encoding.
    EqTags { start: u32, end: u32 },
    /// `attr starts-with p` — prefix bytes in `misc_str[start..end]`.
    Prefix { start: u32, end: u32 },
}

/// The frozen, data-oriented compilation of a [`SubscriptionIndex`]; see
/// the [module docs](self) for the layout. Immutable by construction —
/// rebuild from the mutable index when subscriptions change.
///
/// Subscriptions are partitioned by predicate count into *singles*
/// (frozen ordinals `[0, s)`), *doubles* (`[s, s+d)`) and *multis*
/// (`[s+d, n)`); wildcards are kept aside. Bucket entries are `u32`
/// tokens encoding class + position, decoded with two compares in the
/// bump path.
///
/// # Examples
///
/// ```
/// use pscd_matching::{
///     Content, FrozenIndex, MatchScratch, Predicate, Subscription, SubscriptionIndex,
///     SymbolTable, Value,
/// };
/// let mut idx = SubscriptionIndex::new();
/// let id = idx.insert(Subscription::new(vec![Predicate::ge("words", 100)]));
/// let mut table = SymbolTable::new();
/// let frozen = FrozenIndex::freeze(&idx, &mut table);
/// let mut scratch = MatchScratch::new();
/// let mut out = Vec::new();
/// frozen.matches_into(
///     &table,
///     &Content::new().with("words", Value::int(150)),
///     &mut scratch,
///     &mut out,
/// );
/// assert_eq!(out, vec![id]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrozenIndex {
    /// Frozen ordinal -> subscription id (singles ++ doubles ++ multis).
    ids: Vec<SubscriptionId>,
    /// Number of single-predicate subscriptions (bitset size).
    s_count: u32,
    /// Number of two-predicate subscriptions (per-slot bitset size).
    d_count: u32,
    /// Predicate count per multi (match when the counter reaches this).
    multi_need: Vec<u32>,
    /// Zero-predicate subscriptions, ascending by id.
    wildcards: Vec<SubscriptionId>,

    /// Integer equality: sorted `(attr, value)` keys -> entry ranges.
    eq_int_keys: Vec<(u32, i64)>,
    eq_int_bounds: Vec<u32>,
    eq_int_entries: Vec<u32>,

    /// String equality: sorted packed `(attr << 32) | str_sym` keys.
    eq_str_keys: Vec<u64>,
    eq_str_bounds: Vec<u32>,
    eq_str_entries: Vec<u32>,

    /// `Contains`: tag membership (and string equality), same key packing.
    tag_keys: Vec<u64>,
    tag_bounds: Vec<u32>,
    tag_entries: Vec<u32>,

    /// Numeric ranges, SoA grouped per attribute: normalized inclusive
    /// `[lo, hi]` intervals scanned with a branch-free bounds test.
    range_attrs: Vec<u32>,
    range_bounds: Vec<u32>,
    range_lo: Vec<i64>,
    range_hi: Vec<i64>,
    range_tok: Vec<u32>,

    /// `Exists`: per-attribute entry lists.
    exists_attrs: Vec<u32>,
    exists_bounds: Vec<u32>,
    exists_entries: Vec<u32>,

    /// Compiled rare operators, grouped per attribute.
    misc_attrs: Vec<u32>,
    misc_bounds: Vec<u32>,
    misc_ops: Vec<MiscOp>,
    misc_tok: Vec<u32>,
    misc_tag_syms: Vec<u32>,
    misc_str: String,
}

#[inline]
fn pack(attr: u32, sym: u32) -> u64 {
    ((attr as u64) << 32) | sym as u64
}

/// Sorts `(key, token)` pairs and groups them into a CSR (keys, bounds,
/// entries) triple. Output vectors are sized exactly (distinct keys are
/// counted after the sort) — at the million-subscription scale the bench
/// runs, letting these grow by doubling dominated freeze time and spread
/// its p90 far above the median.
fn build_csr<K: Ord + Copy + PartialEq>(mut pairs: Vec<(K, u32)>) -> (Vec<K>, Vec<u32>, Vec<u32>) {
    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let distinct = 1 + pairs.windows(2).filter(|w| w[0].0 != w[1].0).count();
    let mut keys = Vec::with_capacity(if pairs.is_empty() { 0 } else { distinct });
    let mut bounds = Vec::with_capacity(if pairs.is_empty() { 1 } else { distinct + 1 });
    let mut entries = Vec::with_capacity(pairs.len());
    for (key, tok) in pairs {
        if keys.last() != Some(&key) {
            keys.push(key);
            bounds.push(entries.len() as u32);
        }
        entries.push(tok);
    }
    bounds.push(entries.len() as u32);
    (keys, bounds, entries)
}

impl FrozenIndex {
    /// Compiles `index` into a frozen kernel, interning every predicate
    /// string into `table`. Many indexes (one per proxy) may share one
    /// table; content symbolized against it matches any of them.
    pub fn freeze(index: &SubscriptionIndex, table: &mut SymbolTable) -> Self {
        // Counting pre-pass: size every arena exactly before a single
        // push. The populations (subscriptions per class, predicates per
        // operator family) are all known up front, and at the
        // million-subscription scale the bench freezes, letting these
        // vectors grow by doubling was the source of the freeze_build
        // p90 outlier (first-touch page faults on each fresh doubling).
        // `index.iter()` sorts ids and re-resolves each subscription
        // through the map, so it runs exactly once; both passes below
        // walk the collected slice.
        let all: Vec<(SubscriptionId, &Subscription)> = index.iter().collect();
        let (mut n_singles, mut n_doubles, mut n_multis, mut n_wild) = (0usize, 0, 0, 0);
        let (mut n_eq_int, mut n_eq_str, mut n_tag) = (0usize, 0, 0);
        let (mut n_range, mut n_exists, mut n_misc) = (0usize, 0, 0);
        for (_, sub) in &all {
            match sub.len() {
                0 => n_wild += 1,
                1 => n_singles += 1,
                2 => n_doubles += 1,
                _ => n_multis += 1,
            }
            for pred in sub.predicates() {
                match pred.op() {
                    Op::Eq(Value::Int(_)) => n_eq_int += 1,
                    Op::Eq(Value::Str(_)) => n_eq_str += 1,
                    Op::Contains(_) => n_tag += 1,
                    Op::Lt(_) | Op::Le(_) | Op::Gt(_) | Op::Ge(_) => n_range += 1,
                    Op::Exists => n_exists += 1,
                    Op::Eq(Value::Tags(_)) | Op::Ne(_) | Op::Prefix(_) => n_misc += 1,
                }
            }
        }

        let mut singles = Vec::with_capacity(n_singles);
        let mut doubles = Vec::with_capacity(n_doubles);
        let mut multis = Vec::with_capacity(n_multis);
        let mut out = FrozenIndex::default();
        out.wildcards.reserve_exact(n_wild);
        out.ids.reserve_exact(n_singles + n_doubles + n_multis);
        out.multi_need.reserve_exact(n_multis);
        for &(id, sub) in &all {
            match sub.len() {
                0 => out.wildcards.push(id),
                1 => singles.push((id, sub)),
                2 => doubles.push((id, sub)),
                _ => multis.push((id, sub)),
            }
        }
        out.s_count = singles.len() as u32;
        out.d_count = doubles.len() as u32;

        let mut eq_int = Vec::with_capacity(n_eq_int);
        let mut eq_str = Vec::with_capacity(n_eq_str);
        let mut tag = Vec::with_capacity(n_tag);
        let mut range: Vec<(u32, i64, i64, u32)> = Vec::with_capacity(n_range);
        let mut exists = Vec::with_capacity(n_exists);
        let mut misc: Vec<(u32, u32, MiscOp)> = Vec::with_capacity(n_misc);

        let mut compile =
            |out: &mut FrozenIndex, table: &mut SymbolTable, attr_sym: u32, op: &Op, tok: u32| {
                match op {
                    Op::Eq(Value::Int(v)) => eq_int.push(((attr_sym, *v), tok)),
                    Op::Eq(Value::Str(s)) => {
                        eq_str.push((pack(attr_sym, table.intern_string(s)), tok))
                    }
                    Op::Eq(Value::Tags(tags)) => {
                        let range = intern_tag_set(out, table, tags);
                        misc.push((
                            attr_sym,
                            tok,
                            MiscOp::EqTags {
                                start: range.0,
                                end: range.1,
                            },
                        ));
                    }
                    Op::Ne(Value::Int(v)) => misc.push((attr_sym, tok, MiscOp::NeInt(*v))),
                    Op::Ne(Value::Str(s)) => {
                        misc.push((attr_sym, tok, MiscOp::NeStr(table.intern_string(s))))
                    }
                    Op::Ne(Value::Tags(tags)) => {
                        let range = intern_tag_set(out, table, tags);
                        misc.push((
                            attr_sym,
                            tok,
                            MiscOp::NeTags {
                                start: range.0,
                                end: range.1,
                            },
                        ));
                    }
                    // Normalize ranges to inclusive [lo, hi]; a bound at the
                    // integer edge (Lt(MIN), Gt(MAX)) can never be satisfied
                    // and compiles to the empty interval [1, 0].
                    Op::Lt(b) => match b.checked_sub(1) {
                        Some(hi) => range.push((attr_sym, i64::MIN, hi, tok)),
                        None => range.push((attr_sym, 1, 0, tok)),
                    },
                    Op::Le(b) => range.push((attr_sym, i64::MIN, *b, tok)),
                    Op::Gt(b) => match b.checked_add(1) {
                        Some(lo) => range.push((attr_sym, lo, i64::MAX, tok)),
                        None => range.push((attr_sym, 1, 0, tok)),
                    },
                    Op::Ge(b) => range.push((attr_sym, *b, i64::MAX, tok)),
                    Op::Contains(t) => tag.push((pack(attr_sym, table.intern_string(t)), tok)),
                    Op::Prefix(p) => {
                        let start = out.misc_str.len() as u32;
                        out.misc_str.push_str(p);
                        misc.push((
                            attr_sym,
                            tok,
                            MiscOp::Prefix {
                                start,
                                end: out.misc_str.len() as u32,
                            },
                        ));
                    }
                    Op::Exists => exists.push((attr_sym, tok)),
                }
            };

        for (i, (id, sub)) in singles.iter().enumerate() {
            out.ids.push(*id);
            let pred = &sub.predicates()[0];
            let attr_sym = table.intern_name(pred.attr());
            compile(&mut out, table, attr_sym, pred.op(), i as u32);
        }
        for (j, (id, sub)) in doubles.iter().enumerate() {
            out.ids.push(*id);
            for (slot, pred) in sub.predicates().iter().enumerate() {
                let attr_sym = table.intern_name(pred.attr());
                let tok = out.s_count + ((j as u32) << 1 | slot as u32);
                compile(&mut out, table, attr_sym, pred.op(), tok);
            }
        }
        for (k, (id, sub)) in multis.iter().enumerate() {
            out.ids.push(*id);
            out.multi_need.push(sub.len() as u32);
            let tok = out.s_count + 2 * out.d_count + k as u32;
            for pred in sub.predicates() {
                let attr_sym = table.intern_name(pred.attr());
                compile(&mut out, table, attr_sym, pred.op(), tok);
            }
        }

        (out.eq_int_keys, out.eq_int_bounds, out.eq_int_entries) = build_csr(eq_int);
        (out.eq_str_keys, out.eq_str_bounds, out.eq_str_entries) = build_csr(eq_str);
        (out.tag_keys, out.tag_bounds, out.tag_entries) = build_csr(tag);
        (out.exists_attrs, out.exists_bounds, out.exists_entries) = build_csr(exists);

        range.sort_unstable();
        out.range_lo.reserve_exact(range.len());
        out.range_hi.reserve_exact(range.len());
        out.range_tok.reserve_exact(range.len());
        for (attr, lo, hi, tok) in range {
            if out.range_attrs.last() != Some(&attr) {
                out.range_attrs.push(attr);
                out.range_bounds.push(out.range_tok.len() as u32);
            }
            out.range_lo.push(lo);
            out.range_hi.push(hi);
            out.range_tok.push(tok);
        }
        out.range_bounds.push(out.range_tok.len() as u32);

        misc.sort_by_key(|&(attr, tok, _)| (attr, tok));
        out.misc_ops.reserve_exact(misc.len());
        out.misc_tok.reserve_exact(misc.len());
        for (attr, tok, op) in misc {
            if out.misc_attrs.last() != Some(&attr) {
                out.misc_attrs.push(attr);
                out.misc_bounds.push(out.misc_tok.len() as u32);
            }
            out.misc_ops.push(op);
            out.misc_tok.push(tok);
        }
        out.misc_bounds.push(out.misc_tok.len() as u32);

        out
    }

    /// Number of frozen subscriptions (including wildcards).
    pub fn len(&self) -> usize {
        self.ids.len() + self.wildcards.len()
    }

    /// `true` if no subscriptions were frozen.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The frozen kernel's batched match: symbolizes `content` against
    /// `table` and writes all matching subscription ids into `out`
    /// (cleared first), sorted by id. Allocation-free after warm-up.
    pub fn matches_into(
        &self,
        table: &SymbolTable,
        content: &Content,
        scratch: &mut MatchScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        scratch.symbolize(table, content);
        self.matches_view_into(scratch, out);
    }

    /// The number of subscriptions matching `content` — symbolizes, then
    /// counts by popcount without materializing ids.
    pub fn match_count_scratch(
        &self,
        table: &SymbolTable,
        content: &Content,
        scratch: &mut MatchScratch,
    ) -> usize {
        scratch.symbolize(table, content);
        self.match_count_view(scratch)
    }

    /// Matches against the view already symbolized into `scratch` (see
    /// [`MatchScratch::symbolize`]) — the per-proxy half of a fan-out that
    /// symbolizes once per publish.
    pub fn matches_view_into(&self, scratch: &mut MatchScratch, out: &mut Vec<SubscriptionId>) {
        out.clear();
        let view = std::mem::take(&mut scratch.frozen.view);
        self.accumulate(&view, &mut scratch.frozen);
        scratch.frozen.view = view;
        let fs = &scratch.frozen;
        for &w in &fs.s_touched {
            let mut bits = fs.s_words[w as usize];
            let base = w << 6;
            while bits != 0 {
                out.push(self.ids[(base + bits.trailing_zeros()) as usize]);
                bits &= bits - 1;
            }
        }
        for &w in &fs.d_touched {
            let mut bits = fs.d0_words[w as usize] & fs.d1_words[w as usize];
            let base = self.s_count + (w << 6);
            while bits != 0 {
                out.push(self.ids[(base + bits.trailing_zeros()) as usize]);
                bits &= bits - 1;
            }
        }
        let m_base = self.s_count + self.d_count;
        for &m in &fs.m_touched {
            if fs.m_counts[m as usize] == self.multi_need[m as usize] {
                out.push(self.ids[(m_base + m) as usize]);
            }
        }
        out.extend_from_slice(&self.wildcards);
        out.sort_unstable();
    }

    /// Counts matches against the view already symbolized into `scratch`.
    pub fn match_count_view(&self, scratch: &mut MatchScratch) -> usize {
        let view = std::mem::take(&mut scratch.frozen.view);
        self.accumulate(&view, &mut scratch.frozen);
        scratch.frozen.view = view;
        let fs = &scratch.frozen;
        let mut n = self.wildcards.len();
        for &w in &fs.s_touched {
            n += fs.s_words[w as usize].count_ones() as usize;
        }
        for &w in &fs.d_touched {
            n += (fs.d0_words[w as usize] & fs.d1_words[w as usize]).count_ones() as usize;
        }
        for &m in &fs.m_touched {
            if fs.m_counts[m as usize] == self.multi_need[m as usize] {
                n += 1;
            }
        }
        n
    }

    fn accumulate(&self, view: &SymView, fs: &mut FrozenScratch) {
        fs.begin(
            (self.s_count as usize).div_ceil(64),
            (self.d_count as usize).div_ceil(64),
            self.multi_need.len(),
        );
        for attr in &view.attrs {
            let a = attr.name_sym;
            match &attr.val {
                SymVal::Int(v) => {
                    if let Ok(i) = self.eq_int_keys.binary_search(&(a, *v)) {
                        self.bump_range(fs, &self.eq_int_bounds, &self.eq_int_entries, i);
                    }
                    if let Ok(i) = self.range_attrs.binary_search(&a) {
                        let (s, e) = (
                            self.range_bounds[i] as usize,
                            self.range_bounds[i + 1] as usize,
                        );
                        for j in s..e {
                            if *v >= self.range_lo[j] && *v <= self.range_hi[j] {
                                self.bump(fs, self.range_tok[j]);
                            }
                        }
                    }
                }
                SymVal::Str { sym, .. } => {
                    if *sym != NO_SYM {
                        let key = pack(a, *sym);
                        if let Ok(i) = self.eq_str_keys.binary_search(&key) {
                            self.bump_range(fs, &self.eq_str_bounds, &self.eq_str_entries, i);
                        }
                        // `Contains` on a string attribute means equality.
                        if let Ok(i) = self.tag_keys.binary_search(&key) {
                            self.bump_range(fs, &self.tag_bounds, &self.tag_entries, i);
                        }
                    }
                }
                SymVal::Tags { start, end, .. } => {
                    for &tsym in &view.tag_syms[*start as usize..*end as usize] {
                        if let Ok(i) = self.tag_keys.binary_search(&pack(a, tsym)) {
                            self.bump_range(fs, &self.tag_bounds, &self.tag_entries, i);
                        }
                    }
                }
            }
            if let Ok(i) = self.exists_attrs.binary_search(&a) {
                self.bump_range(fs, &self.exists_bounds, &self.exists_entries, i);
            }
            if let Ok(i) = self.misc_attrs.binary_search(&a) {
                let (s, e) = (
                    self.misc_bounds[i] as usize,
                    self.misc_bounds[i + 1] as usize,
                );
                for j in s..e {
                    if self.eval_misc(&self.misc_ops[j], &attr.val, view) {
                        self.bump(fs, self.misc_tok[j]);
                    }
                }
            }
        }
    }

    #[inline]
    fn bump_range(&self, fs: &mut FrozenScratch, bounds: &[u32], entries: &[u32], i: usize) {
        for &tok in &entries[bounds[i] as usize..bounds[i + 1] as usize] {
            self.bump(fs, tok);
        }
    }

    /// Decodes a token (class + position) and records one satisfied
    /// predicate: a bit OR for singles/doubles, a counter bump for multis.
    #[inline]
    fn bump(&self, fs: &mut FrozenScratch, tok: u32) {
        if tok < self.s_count {
            let w = (tok >> 6) as usize;
            if fs.s_stamp[w] != fs.epoch {
                fs.s_stamp[w] = fs.epoch;
                fs.s_words[w] = 0;
                fs.s_touched.push(w as u32);
            }
            fs.s_words[w] |= 1u64 << (tok & 63);
        } else if tok - self.s_count < 2 * self.d_count {
            let t = tok - self.s_count;
            let bit = t >> 1;
            let w = (bit >> 6) as usize;
            if fs.d_stamp[w] != fs.epoch {
                fs.d_stamp[w] = fs.epoch;
                fs.d0_words[w] = 0;
                fs.d1_words[w] = 0;
                fs.d_touched.push(w as u32);
            }
            let mask = 1u64 << (bit & 63);
            if t & 1 == 0 {
                fs.d0_words[w] |= mask;
            } else {
                fs.d1_words[w] |= mask;
            }
        } else {
            let m = (tok - self.s_count - 2 * self.d_count) as usize;
            if fs.m_stamp[m] != fs.epoch {
                fs.m_stamp[m] = fs.epoch;
                fs.m_counts[m] = 1;
                fs.m_touched.push(m as u32);
            } else {
                fs.m_counts[m] += 1;
            }
        }
    }

    fn eval_misc(&self, op: &MiscOp, val: &SymVal, view: &SymView) -> bool {
        match (op, val) {
            (MiscOp::NeInt(x), SymVal::Int(v)) => v != x,
            (MiscOp::NeStr(xs), SymVal::Str { sym, .. }) => sym != xs,
            (MiscOp::EqTags { start, end }, SymVal::Tags { .. }) => {
                self.tag_sets_equal(*start, *end, val, view)
            }
            (MiscOp::NeTags { start, end }, SymVal::Tags { .. }) => {
                !self.tag_sets_equal(*start, *end, val, view)
            }
            (
                MiscOp::Prefix { start, end },
                SymVal::Str {
                    start: vs, end: ve, ..
                },
            ) => view.str_buf[*vs as usize..*ve as usize]
                .starts_with(&self.misc_str[*start as usize..*end as usize]),
            _ => false,
        }
    }

    fn tag_sets_equal(&self, start: u32, end: u32, val: &SymVal, view: &SymView) -> bool {
        let SymVal::Tags {
            start: vs,
            end: ve,
            total,
        } = val
        else {
            return false;
        };
        let pred = &self.misc_tag_syms[start as usize..end as usize];
        let got = &view.tag_syms[*vs as usize..*ve as usize];
        // An uninterned content tag (dropped from `got` but counted in
        // `total`) can never appear in the predicate's set.
        *total as usize == pred.len() && got.len() == pred.len() && got == pred
    }
}

fn intern_tag_set(
    out: &mut FrozenIndex,
    table: &mut SymbolTable,
    tags: &std::collections::BTreeSet<String>,
) -> (u32, u32) {
    let start = out.misc_tag_syms.len() as u32;
    let mut syms: Vec<u32> = tags.iter().map(|t| table.intern_string(t)).collect();
    syms.sort_unstable();
    out.misc_tag_syms.extend_from_slice(&syms);
    (start, out.misc_tag_syms.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Predicate, Subscription};

    fn frozen(idx: &SubscriptionIndex) -> (FrozenIndex, SymbolTable) {
        let mut table = SymbolTable::new();
        (FrozenIndex::freeze(idx, &mut table), table)
    }

    fn frozen_matches(idx: &SubscriptionIndex, content: &Content) -> Vec<SubscriptionId> {
        let (f, table) = frozen(idx);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        f.matches_into(&table, content, &mut scratch, &mut out);
        let n = f.match_count_scratch(&table, content, &mut scratch);
        assert_eq!(n, out.len(), "count and id list disagree");
        assert_eq!(out, idx.matches(content), "frozen and legacy disagree");
        out
    }

    fn sports_page() -> Content {
        Content::new()
            .with("category", Value::str("sports"))
            .with("words", Value::int(800))
            .with("tags", Value::tags(["tennis", "us-open"]))
    }

    #[test]
    fn eq_and_tag_buckets() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("sports"),
        )]));
        idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("politics"),
        )]));
        let t = idx.insert(Subscription::new(vec![Predicate::contains(
            "tags", "tennis",
        )]));
        idx.insert(Subscription::new(vec![Predicate::contains("tags", "golf")]));
        let c = idx.insert(Subscription::new(vec![Predicate::contains(
            "category", "sports",
        )]));
        assert_eq!(frozen_matches(&idx, &sports_page()), vec![a, t, c]);
    }

    #[test]
    fn all_three_classes_and_wildcards() {
        let mut idx = SubscriptionIndex::new();
        let single = idx.insert(Subscription::new(vec![Predicate::ge("words", 100)]));
        let double = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::contains("tags", "tennis"),
        ]));
        let multi = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::contains("tags", "us-open"),
            Predicate::lt("words", 1000),
        ]));
        let wild = idx.insert(Subscription::wildcard());
        let miss_double = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::contains("tags", "golf"),
        ]));
        let _ = miss_double;
        idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::contains("tags", "us-open"),
            Predicate::gt("words", 1000),
        ]));
        assert_eq!(
            frozen_matches(&idx, &sports_page()),
            vec![single, double, multi, wild]
        );
        assert_eq!(frozen_matches(&idx, &Content::new()), vec![wild]);
    }

    #[test]
    fn ranges_ne_prefix_exists() {
        let mut idx = SubscriptionIndex::new();
        let lt = idx.insert(Subscription::new(vec![Predicate::lt("words", 900)]));
        idx.insert(Subscription::new(vec![Predicate::lt("words", 800)]));
        let le = idx.insert(Subscription::new(vec![Predicate::le("words", 800)]));
        let gt = idx.insert(Subscription::new(vec![Predicate::gt("words", 799)]));
        idx.insert(Subscription::new(vec![Predicate::gt("words", 800)]));
        let ge = idx.insert(Subscription::new(vec![Predicate::ge("words", 800)]));
        let ne = idx.insert(Subscription::new(vec![Predicate::ne(
            "category",
            Value::str("politics"),
        )]));
        idx.insert(Subscription::new(vec![Predicate::ne(
            "category",
            Value::str("sports"),
        )]));
        // Ne across types is false (type mismatch, not inequality).
        idx.insert(Subscription::new(vec![Predicate::ne(
            "category",
            Value::int(3),
        )]));
        let px = idx.insert(Subscription::new(vec![Predicate::prefix(
            "category", "spo",
        )]));
        idx.insert(Subscription::new(vec![Predicate::prefix("category", "xx")]));
        let ex = idx.insert(Subscription::new(vec![Predicate::exists("tags")]));
        idx.insert(Subscription::new(vec![Predicate::exists("author")]));
        assert_eq!(
            frozen_matches(&idx, &sports_page()),
            vec![lt, le, gt, ge, ne, px, ex]
        );
    }

    #[test]
    fn edge_bounds_never_match() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(Subscription::new(vec![Predicate::lt("x", i64::MIN)]));
        idx.insert(Subscription::new(vec![Predicate::gt("x", i64::MAX)]));
        let le = idx.insert(Subscription::new(vec![Predicate::le("x", i64::MIN)]));
        let ge = idx.insert(Subscription::new(vec![Predicate::ge("x", i64::MAX)]));
        assert_eq!(
            frozen_matches(&idx, &Content::new().with("x", Value::int(i64::MIN))),
            vec![le]
        );
        assert_eq!(
            frozen_matches(&idx, &Content::new().with("x", Value::int(i64::MAX))),
            vec![ge]
        );
    }

    #[test]
    fn whole_tag_set_equality() {
        let mut idx = SubscriptionIndex::new();
        let eq = idx.insert(Subscription::new(vec![Predicate::eq(
            "tags",
            Value::tags(["tennis", "us-open"]),
        )]));
        idx.insert(Subscription::new(vec![Predicate::eq(
            "tags",
            Value::tags(["tennis"]),
        )]));
        let ne = idx.insert(Subscription::new(vec![Predicate::ne(
            "tags",
            Value::tags(["tennis"]),
        )]));
        let ne2 = idx.insert(Subscription::new(vec![Predicate::ne(
            "tags",
            Value::tags(["tennis", "us-open"]),
        )]));
        // Eq on a str attr vs tags attr must not cross-fire.
        idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::tags(["sports"]),
        )]));
        assert_eq!(frozen_matches(&idx, &sports_page()), vec![eq, ne]);
        // A content tag no predicate interned still breaks set equality
        // (the eq subscription stops matching, both ne ones now do).
        let extra = sports_page().with("tags", Value::tags(["tennis", "us-open", "zzz"]));
        assert_eq!(frozen_matches(&idx, &extra), vec![ne, ne2]);
    }

    #[test]
    fn uninterned_content_strings() {
        let mut idx = SubscriptionIndex::new();
        let ne = idx.insert(Subscription::new(vec![Predicate::ne(
            "category",
            Value::str("politics"),
        )]));
        idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("politics"),
        )]));
        // "weather" is never interned by any predicate.
        let c = Content::new().with("category", Value::str("weather"));
        assert_eq!(frozen_matches(&idx, &c), vec![ne]);
    }

    #[test]
    fn duplicate_predicates_in_one_subscription() {
        let mut idx = SubscriptionIndex::new();
        let d = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::eq("category", Value::str("sports")),
        ]));
        let m = idx.insert(Subscription::new(vec![
            Predicate::ge("words", 1),
            Predicate::ge("words", 2),
            Predicate::ge("words", 3),
        ]));
        assert_eq!(frozen_matches(&idx, &sports_page()), vec![d, m]);
    }

    #[test]
    fn empty_index_and_scratch_reuse_across_indexes() {
        let empty = SubscriptionIndex::new();
        assert!(frozen_matches(&empty, &sports_page()).is_empty());
        let (f, _) = frozen(&empty);
        assert!(f.is_empty());

        // One scratch, two frozen indexes of different sizes and tables.
        let mut big = SubscriptionIndex::new();
        for i in 0..200 {
            big.insert(Subscription::new(vec![Predicate::ge("words", i * 10)]));
        }
        let mut small = SubscriptionIndex::new();
        let s = small.insert(Subscription::new(vec![Predicate::contains(
            "tags", "tennis",
        )]));
        let (fb, tb) = frozen(&big);
        let (fsm, tsm) = frozen(&small);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        fb.matches_into(&tb, &sports_page(), &mut scratch, &mut out);
        assert_eq!(out.len(), 81);
        fsm.matches_into(&tsm, &sports_page(), &mut scratch, &mut out);
        assert_eq!(out, vec![s]);
        fb.matches_into(&tb, &sports_page(), &mut scratch, &mut out);
        assert_eq!(out.len(), 81);
        assert_eq!(fb.len(), 200);
    }

    #[test]
    fn shared_table_symbolize_once() {
        let mut table = SymbolTable::new();
        let mut a = SubscriptionIndex::new();
        let sa = a.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("sports"),
        )]));
        let mut b = SubscriptionIndex::new();
        let sb = b.insert(Subscription::new(vec![Predicate::contains(
            "tags", "tennis",
        )]));
        let fa = FrozenIndex::freeze(&a, &mut table);
        let fb = FrozenIndex::freeze(&b, &mut table);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        scratch.symbolize(&table, &sports_page());
        fa.matches_view_into(&mut scratch, &mut out);
        assert_eq!(out, vec![sa]);
        fb.matches_view_into(&mut scratch, &mut out);
        assert_eq!(out, vec![sb]);
        assert_eq!(fa.match_count_view(&mut scratch), 1);
        assert_eq!(fb.match_count_view(&mut scratch), 1);
    }

    #[test]
    fn freeze_after_churn_matches_legacy() {
        let mut idx = SubscriptionIndex::new();
        let mut ids = Vec::new();
        for i in 0..30 {
            ids.push(idx.insert(Subscription::new(vec![Predicate::ge("words", i * 50)])));
        }
        for id in ids.iter().step_by(3) {
            idx.remove(*id);
        }
        idx.insert(Subscription::new(vec![Predicate::contains(
            "tags", "tennis",
        )]));
        frozen_matches(&idx, &sports_page());
        frozen_matches(&idx, &Content::new());
    }
}
