//! Siena-style covering relation between subscriptions.

use crate::{Op, Predicate, Subscription, SubscriptionId, Value};

/// Returns `true` if subscription `a` **covers** subscription `b`: every
/// content matching `b` is guaranteed to also match `a`.
///
/// Covering lets a broker forward only the most general subscriptions
/// upstream (Carzaniga et al., *Siena*): if `a` is already registered,
/// registering a covered `b` changes nothing about which pages must be
/// delivered.
///
/// The check is *sound but conservative*: it may return `false` for some
/// semantically-covering pairs (e.g. implications that would require
/// cross-attribute reasoning), but never returns `true` incorrectly.
///
/// # Examples
///
/// ```
/// use pscd_matching::{covers, Predicate, Subscription, Value};
/// let general = Subscription::new(vec![Predicate::ge("words", 100)]);
/// let specific = Subscription::new(vec![
///     Predicate::ge("words", 500),
///     Predicate::eq("category", Value::str("sports")),
/// ]);
/// assert!(covers(&general, &specific));
/// assert!(!covers(&specific, &general));
/// ```
pub fn covers(a: &Subscription, b: &Subscription) -> bool {
    a.predicates()
        .iter()
        .all(|pa| b.predicates().iter().any(|pb| implies(pb, pa)))
}

/// `true` if satisfying `premise` guarantees satisfying `conclusion`
/// (conservative single-predicate implication).
fn implies(premise: &Predicate, conclusion: &Predicate) -> bool {
    if premise.attr() != conclusion.attr() {
        return false;
    }
    use Op::*;
    match (premise.op(), conclusion.op()) {
        // Any predicate on the attribute implies its existence (all our
        // operators require the attribute to be present).
        (_, Exists) => true,
        (Eq(x), Eq(y)) => x == y,
        (Eq(x), Ne(y)) => x.type_name() == y.type_name() && x != y,
        (Eq(Value::Int(i)), Lt(b)) => i < b,
        (Eq(Value::Int(i)), Le(b)) => i <= b,
        (Eq(Value::Int(i)), Gt(b)) => i > b,
        (Eq(Value::Int(i)), Ge(b)) => i >= b,
        (Eq(Value::Tags(tags)), Contains(t)) => tags.contains(t),
        (Eq(Value::Str(s)), Contains(t)) => s == t,
        (Eq(Value::Str(s)), Prefix(p)) => s.starts_with(p.as_str()),
        (Ne(x), Ne(y)) => x == y,
        (Lt(x), Lt(y)) => x <= y,
        (Lt(x), Le(y)) => x - 1 <= *y,
        (Lt(x), Ne(Value::Int(v))) => v >= x,
        (Le(x), Le(y)) => x <= y,
        (Le(x), Lt(y)) => x < y,
        (Le(x), Ne(Value::Int(v))) => v > x,
        (Gt(x), Gt(y)) => x >= y,
        (Gt(x), Ge(y)) => x + 1 >= *y,
        (Gt(x), Ne(Value::Int(v))) => v <= x,
        (Ge(x), Ge(y)) => x >= y,
        (Ge(x), Gt(y)) => x > y,
        (Ge(x), Ne(Value::Int(v))) => v < x,
        (Contains(s), Contains(t)) => s == t,
        // `Contains` on a string attribute behaves as equality, but on a
        // tags attribute it does not pin other members; only the
        // string-equality reading supports prefix implication, so this stays
        // conservative and requires an exact Eq for prefix conclusions.
        (Prefix(p), Prefix(q)) => p.starts_with(q.as_str()),
        _ => false,
    }
}

/// A set of subscriptions minimized under the covering relation: inserting a
/// subscription covered by a member is a no-op, and inserting one that
/// covers members evicts them.
///
/// Brokers use this to aggregate the interest of the subscribers behind a
/// proxy before forwarding it to the publisher.
///
/// # Examples
///
/// ```
/// use pscd_matching::{CoverSet, Predicate, Subscription, SubscriptionId};
/// let mut set = CoverSet::new();
/// let wide = Subscription::new(vec![Predicate::ge("words", 10)]);
/// let narrow = Subscription::new(vec![Predicate::ge("words", 500)]);
/// assert!(set.insert(SubscriptionId::new(0), wide));
/// // Covered by the wider one: not forwarded.
/// assert!(!set.insert(SubscriptionId::new(1), narrow));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoverSet {
    members: Vec<(SubscriptionId, Subscription)>,
}

impl CoverSet {
    /// Creates an empty cover set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of maximal (uncovered) subscriptions retained.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Inserts a subscription. Returns `true` if the subscription entered
    /// the set (i.e. it is not covered by an existing member and must be
    /// forwarded); members covered by the newcomer are evicted.
    pub fn insert(&mut self, id: SubscriptionId, sub: Subscription) -> bool {
        if self
            .members
            .iter()
            .any(|(_, existing)| covers(existing, &sub))
        {
            return false;
        }
        self.members.retain(|(_, existing)| !covers(&sub, existing));
        self.members.push((id, sub));
        true
    }

    /// Removes a subscription by id. Returns `true` if it was present.
    ///
    /// Note: removing a maximal subscription may "uncover" previously
    /// discarded ones; callers that need exact semantics should re-insert
    /// the live population (the broker keeps the full per-proxy index and
    /// rebuilds its cover set on unsubscribe).
    pub fn remove(&mut self, id: SubscriptionId) -> bool {
        let before = self.members.len();
        self.members.retain(|&(mid, _)| mid != id);
        before != self.members.len()
    }

    /// Iterates over the maximal subscriptions.
    pub fn iter(&self) -> impl Iterator<Item = (&SubscriptionId, &Subscription)> {
        self.members.iter().map(|(id, s)| (id, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(preds: Vec<Predicate>) -> Subscription {
        Subscription::new(preds)
    }

    #[test]
    fn wildcard_covers_all() {
        let w = Subscription::wildcard();
        let s = sub(vec![Predicate::eq("a", Value::int(1))]);
        assert!(covers(&w, &s));
        assert!(covers(&w, &w));
        assert!(!covers(&s, &w));
    }

    #[test]
    fn fewer_predicates_cover_more() {
        let wide = sub(vec![Predicate::eq("cat", Value::str("x"))]);
        let narrow = sub(vec![
            Predicate::eq("cat", Value::str("x")),
            Predicate::ge("words", 10),
        ]);
        assert!(covers(&wide, &narrow));
        assert!(!covers(&narrow, &wide));
    }

    #[test]
    fn range_implication() {
        assert!(covers(
            &sub(vec![Predicate::ge("w", 10)]),
            &sub(vec![Predicate::ge("w", 20)])
        ));
        assert!(!covers(
            &sub(vec![Predicate::ge("w", 20)]),
            &sub(vec![Predicate::ge("w", 10)])
        ));
        assert!(covers(
            &sub(vec![Predicate::lt("w", 10)]),
            &sub(vec![Predicate::le("w", 5)])
        ));
        assert!(covers(
            &sub(vec![Predicate::gt("w", 9)]),
            &sub(vec![Predicate::ge("w", 10)])
        ));
        assert!(covers(
            &sub(vec![Predicate::le("w", 9)]),
            &sub(vec![Predicate::lt("w", 10)])
        ));
    }

    #[test]
    fn eq_implies_ranges_and_membership() {
        assert!(covers(
            &sub(vec![Predicate::lt("w", 100)]),
            &sub(vec![Predicate::eq("w", Value::int(5))])
        ));
        assert!(covers(
            &sub(vec![Predicate::contains("tags", "a")]),
            &sub(vec![Predicate::eq("tags", Value::tags(["a", "b"]))])
        ));
        assert!(covers(
            &sub(vec![Predicate::prefix("s", "ab")]),
            &sub(vec![Predicate::eq("s", Value::str("abc"))])
        ));
        assert!(covers(
            &sub(vec![Predicate::ne("w", Value::int(9))]),
            &sub(vec![Predicate::eq("w", Value::int(5))])
        ));
        assert!(!covers(
            &sub(vec![Predicate::ne("w", Value::int(5))]),
            &sub(vec![Predicate::eq("w", Value::int(5))])
        ));
    }

    #[test]
    fn exists_is_implied_by_anything_on_attr() {
        assert!(covers(
            &sub(vec![Predicate::exists("w")]),
            &sub(vec![Predicate::lt("w", 3)])
        ));
        assert!(!covers(
            &sub(vec![Predicate::exists("w")]),
            &sub(vec![Predicate::lt("v", 3)])
        ));
    }

    #[test]
    fn prefix_nesting() {
        assert!(covers(
            &sub(vec![Predicate::prefix("s", "ab")]),
            &sub(vec![Predicate::prefix("s", "abc")])
        ));
        assert!(!covers(
            &sub(vec![Predicate::prefix("s", "abc")]),
            &sub(vec![Predicate::prefix("s", "ab")])
        ));
    }

    #[test]
    fn covering_is_semantically_sound() {
        // Randomized-ish soundness spot check: whenever covers(a, b) holds,
        // any content matching b must match a.
        use crate::Content;
        let subs = vec![
            Subscription::wildcard(),
            sub(vec![Predicate::ge("w", 10)]),
            sub(vec![Predicate::ge("w", 20)]),
            sub(vec![Predicate::lt("w", 15)]),
            sub(vec![Predicate::eq("w", Value::int(12))]),
            sub(vec![Predicate::eq("c", Value::str("x"))]),
            sub(vec![
                Predicate::eq("c", Value::str("x")),
                Predicate::ge("w", 12),
            ]),
        ];
        let contents: Vec<Content> = (0..40)
            .map(|i| {
                Content::new()
                    .with("w", Value::int(i))
                    .with("c", Value::str(if i % 2 == 0 { "x" } else { "y" }))
            })
            .collect();
        for a in &subs {
            for b in &subs {
                if covers(a, b) {
                    for c in &contents {
                        assert!(
                            !b.matches(c) || a.matches(c),
                            "cover violated: a={a} b={b} content w={:?}",
                            c.get("w")
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cover_set_minimizes() {
        let mut set = CoverSet::new();
        assert!(set.is_empty());
        let narrow = sub(vec![Predicate::ge("w", 500)]);
        let wide = sub(vec![Predicate::ge("w", 10)]);
        assert!(set.insert(SubscriptionId::new(0), narrow));
        // The wider subscription evicts the narrow one.
        assert!(set.insert(SubscriptionId::new(1), wide));
        assert_eq!(set.len(), 1);
        assert_eq!(*set.iter().next().unwrap().0, SubscriptionId::new(1));
        // Re-inserting something covered is a no-op.
        assert!(!set.insert(SubscriptionId::new(2), sub(vec![Predicate::ge("w", 99)])));
        assert_eq!(set.len(), 1);
        assert!(set.remove(SubscriptionId::new(1)));
        assert!(!set.remove(SubscriptionId::new(1)));
        assert!(set.is_empty());
    }
}
