//! Interned symbol spaces for the frozen match kernel.
//!
//! The frozen kernel ([`FrozenIndex`](crate::FrozenIndex)) never hashes or
//! compares strings in its per-publish loop: attribute names and string
//! values/tags are interned once — at freeze time for predicates, once per
//! publish for content — into dense `u32` symbols, and every bucket lookup
//! afterwards is an integer binary search.

use std::collections::HashMap;

/// Sentinel for "this string is not interned" (no predicate references it).
pub(crate) const NO_SYM: u32 = u32::MAX;

/// Two dense intern spaces shared by every [`FrozenIndex`](crate::FrozenIndex)
/// built against it: one for attribute *names*, one for string *values and
/// tags* (they share a space — buckets are keyed by `(attr, string)` pairs,
/// so equality values and tags can never collide).
///
/// One table typically serves many frozen indexes (one per proxy), which is
/// what lets a publish symbolize its content **once** and then match against
/// every proxy's index with zero string work.
///
/// # Examples
///
/// ```
/// use pscd_matching::SymbolTable;
/// let mut t = SymbolTable::new();
/// let a = t.intern_name("category");
/// assert_eq!(t.intern_name("category"), a);
/// assert_eq!(t.name_sym("category"), Some(a));
/// assert_eq!(t.name_sym("missing"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: HashMap<String, u32>,
    strings: HashMap<String, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an attribute name, returning its dense symbol.
    pub fn intern_name(&mut self, name: &str) -> u32 {
        let next = self.names.len() as u32;
        match self.names.get(name) {
            Some(&sym) => sym,
            None => {
                self.names.insert(name.to_owned(), next);
                next
            }
        }
    }

    /// Interns a string value or tag, returning its dense symbol.
    pub fn intern_string(&mut self, s: &str) -> u32 {
        let next = self.strings.len() as u32;
        match self.strings.get(s) {
            Some(&sym) => sym,
            None => {
                self.strings.insert(s.to_owned(), next);
                next
            }
        }
    }

    /// The symbol of an attribute name, if any predicate interned it.
    #[inline]
    pub fn name_sym(&self, name: &str) -> Option<u32> {
        self.names.get(name).copied()
    }

    /// The symbol of a string value or tag, if any predicate interned it.
    #[inline]
    pub fn string_sym(&self, s: &str) -> Option<u32> {
        self.strings.get(s).copied()
    }

    /// Number of interned attribute names.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// Number of interned string values/tags.
    pub fn string_count(&self) -> usize {
        self.strings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern_name("a"), 0);
        assert_eq!(t.intern_name("b"), 1);
        assert_eq!(t.intern_name("a"), 0);
        assert_eq!(t.name_count(), 2);
        assert_eq!(t.intern_string("x"), 0);
        assert_eq!(t.intern_string("x"), 0);
        assert_eq!(t.string_count(), 1);
        assert_eq!(t.string_sym("x"), Some(0));
        assert_eq!(t.string_sym("y"), None);
    }
}
