//! Subscriptions: conjunctions of predicates.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Content, Predicate};

/// Identifier of a subscription inside a [`SubscriptionIndex`](crate::SubscriptionIndex).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SubscriptionId(u64);

impl SubscriptionId {
    /// Creates an identifier from its raw index.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw index.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// A subscriber's stated interest: the conjunction of all its predicates.
///
/// An empty predicate list is the wildcard subscription that matches every
/// page — some notification services offer exactly that ("all breaking
/// news").
///
/// # Examples
///
/// ```
/// use pscd_matching::{Content, Predicate, Subscription, Value};
/// let s = Subscription::new(vec![
///     Predicate::eq("category", Value::str("finance")),
///     Predicate::ge("words", 100),
/// ]);
/// let page = Content::new()
///     .with("category", Value::str("finance"))
///     .with("words", Value::int(400));
/// assert!(s.matches(&page));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Subscription {
    predicates: Vec<Predicate>,
}

impl Subscription {
    /// Creates a subscription from its predicates (conjunction).
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Self { predicates }
    }

    /// The wildcard subscription matching all content.
    pub fn wildcard() -> Self {
        Self::default()
    }

    /// The predicates of the conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// `true` for the wildcard subscription.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Evaluates the full conjunction against content.
    pub fn matches(&self, content: &Content) -> bool {
        self.predicates.iter().all(|p| p.eval(content))
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "<wildcard>");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl FromIterator<Predicate> for Subscription {
    fn from_iter<I: IntoIterator<Item = Predicate>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn conjunction_semantics() {
        let s = Subscription::new(vec![
            Predicate::eq("a", Value::int(1)),
            Predicate::eq("b", Value::int(2)),
        ]);
        assert!(s.matches(
            &Content::new()
                .with("a", Value::int(1))
                .with("b", Value::int(2))
        ));
        assert!(!s.matches(&Content::new().with("a", Value::int(1))));
    }

    #[test]
    fn wildcard_matches_everything() {
        let w = Subscription::wildcard();
        assert!(w.is_empty());
        assert!(w.matches(&Content::new()));
        assert!(w.matches(&Content::new().with("x", Value::int(0))));
    }

    #[test]
    fn from_iterator_and_display() {
        let s: Subscription = [Predicate::ge("w", 1), Predicate::lt("w", 9)]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "w >= 1 AND w < 9");
        assert_eq!(Subscription::wildcard().to_string(), "<wildcard>");
        assert_eq!(SubscriptionId::new(4).to_string(), "sub4");
        assert_eq!(SubscriptionId::new(4).raw(), 4);
    }
}
