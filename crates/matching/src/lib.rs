//! Content-based subscription matching for publish/subscribe systems.
//!
//! The paper's architecture (§2) contains a **matching engine** that, when a
//! page is published, determines which subscribers' interest profiles match
//! it; the content-distribution strategies then only consume the *count* of
//! matching subscriptions per (page, proxy). This crate provides both layers:
//!
//! * A full **content-based matching engine**: subscriptions are
//!   conjunctions of [`Predicate`]s over typed page attributes
//!   ([`Content`]), evaluated through a counting-based
//!   [`SubscriptionIndex`] in the style of Fabret et al. (SIGMOD'01) /
//!   Yan & Garcia-Molina. A Siena-style [covering relation](covers) lets
//!   brokers aggregate subscriptions.
//! * The [`Matcher`] abstraction consumed by the broker and simulator:
//!   [`EngineMatcher`] runs the real engine over registered content, while
//!   [`TableMatcher`] wraps a precomputed
//!   [`SubscriptionTable`](pscd_types::SubscriptionTable) — which is what
//!   the paper's synthetic workload produces (only counts are modeled,
//!   §4.3).
//!
//! # Examples
//!
//! ```
//! use pscd_matching::{Content, Predicate, Subscription, SubscriptionIndex, Value};
//!
//! let mut index = SubscriptionIndex::new();
//! let sports = Subscription::new(vec![
//!     Predicate::eq("category", Value::str("sports")),
//!     Predicate::contains("tags", "tennis"),
//! ]);
//! let id = index.insert(sports);
//!
//! let page = Content::new()
//!     .with("category", Value::str("sports"))
//!     .with("tags", Value::tags(["tennis", "us-open"]));
//! assert_eq!(index.matches(&page), vec![id]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aggregate;
mod content;
mod cover;
mod error;
mod frozen;
mod index;
mod matcher;
mod predicate;
mod subscription;
mod symbol;

pub use aggregate::AggregatedMatcher;
pub use content::{Content, Value};
pub use cover::{covers, CoverSet};
pub use error::MatchError;
pub use frozen::{FrozenIndex, SymView};
pub use index::{MatchScratch, SubscriptionIndex};
pub use matcher::{EngineMatcher, Matcher, TableMatcher};
pub use predicate::{Op, Predicate};
pub use subscription::{Subscription, SubscriptionId};
pub use symbol::SymbolTable;
