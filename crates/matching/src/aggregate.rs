//! Broker-side subscription aggregation.

use pscd_types::{PageId, ServerId};

use crate::{
    covers, Content, CoverSet, EngineMatcher, MatchError, Matcher, Subscription, SubscriptionId,
};

/// A matching engine with per-proxy **subscription aggregation**: each
/// proxy maintains the minimal cover set of its users' subscriptions
/// (Siena-style) and only that set needs to be forwarded to the publisher.
///
/// The paper's architecture (§2) has proxies "aggregate their users'
/// subscriptions"; this type makes the aggregation concrete: a new
/// subscription covered by an existing one changes nothing upstream, while
/// a broader one replaces the entries it covers.
///
/// Matching still runs over the *full* per-proxy population (counts feed
/// the strategies' value functions), so aggregation only affects what the
/// publisher must know.
///
/// # Examples
///
/// ```
/// use pscd_matching::{AggregatedMatcher, Predicate, Subscription, Value};
/// use pscd_types::ServerId;
///
/// let mut m = AggregatedMatcher::new(1);
/// let s0 = ServerId::new(0);
/// let wide = Subscription::new(vec![Predicate::eq("category", Value::str("sports"))]);
/// let narrow = Subscription::new(vec![
///     Predicate::eq("category", Value::str("sports")),
///     Predicate::ge("bytes", 1_000),
/// ]);
/// let (_, forwarded) = m.subscribe(s0, wide)?;
/// assert!(forwarded); // first subscription: the publisher must learn it
/// let (_, forwarded) = m.subscribe(s0, narrow)?;
/// assert!(!forwarded); // covered: nothing new upstream
/// assert_eq!(m.upstream_len(s0)?, 1);
/// # Ok::<(), pscd_matching::MatchError>(())
/// ```
#[derive(Debug, Default)]
pub struct AggregatedMatcher {
    matcher: EngineMatcher,
    covers: Vec<CoverSet>,
}

impl AggregatedMatcher {
    /// Creates an aggregated matcher for `servers` proxies.
    pub fn new(servers: u16) -> Self {
        Self {
            matcher: EngineMatcher::new(servers),
            covers: (0..servers).map(|_| CoverSet::new()).collect(),
        }
    }

    /// Number of proxies.
    pub fn server_count(&self) -> u16 {
        self.matcher.server_count()
    }

    /// Registers a subscription at `server`. Returns its id and whether
    /// the proxy's *upstream* (aggregated) set changed — i.e. whether the
    /// publisher needs to be told.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::UnknownServer`] if `server` is out of range.
    pub fn subscribe(
        &mut self,
        server: ServerId,
        subscription: Subscription,
    ) -> Result<(SubscriptionId, bool), MatchError> {
        let id = self.matcher.subscribe(server, subscription.clone())?;
        let forwarded = self.covers[server.as_usize()].insert(id, subscription);
        Ok((id, forwarded))
    }

    /// Removes a subscription. Returns `true` if the upstream set changed
    /// (it is rebuilt from the surviving population, since removing a
    /// maximal subscription can *uncover* previously absorbed ones).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::UnknownServer`] / [`MatchError::UnknownSubscription`].
    pub fn unsubscribe(
        &mut self,
        server: ServerId,
        id: SubscriptionId,
    ) -> Result<bool, MatchError> {
        self.matcher.unsubscribe(server, id)?;
        let cover = &mut self.covers[server.as_usize()];
        let was_upstream = cover.iter().any(|(&cid, _)| cid == id);
        if !was_upstream {
            return Ok(false);
        }
        // Rebuild the minimal set from the live population.
        let mut rebuilt = CoverSet::new();
        for (sid, sub) in self.matcher.index(server)?.iter() {
            rebuilt.insert(sid, sub.clone());
        }
        *cover = rebuilt;
        Ok(true)
    }

    /// The minimal subscription set proxy `server` forwards upstream.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::UnknownServer`] if `server` is out of range.
    pub fn upstream(
        &self,
        server: ServerId,
    ) -> Result<impl Iterator<Item = &Subscription>, MatchError> {
        let count = self.covers.len() as u16;
        self.covers
            .get(server.as_usize())
            .map(|c| c.iter().map(|(_, s)| s))
            .ok_or(MatchError::UnknownServer {
                server,
                server_count: count,
            })
    }

    /// Size of the upstream set at `server`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::UnknownServer`] if `server` is out of range.
    pub fn upstream_len(&self, server: ServerId) -> Result<usize, MatchError> {
        Ok(self.upstream(server)?.count())
    }

    /// `true` if the publisher needs to deliver `content` to `server` at
    /// all — evaluated against the *aggregated* set only, which must agree
    /// with the full population (soundness of covering).
    pub fn upstream_matches(&self, server: ServerId, content: &Content) -> bool {
        self.covers
            .get(server.as_usize())
            .is_some_and(|c| c.iter().any(|(_, s)| s.matches(content)))
    }

    /// Associates content with a page id (typically at publish time).
    pub fn register_page(&mut self, page: PageId, content: Content) {
        self.matcher.register_page(page, content);
    }

    /// The underlying full-population matcher.
    pub fn matcher(&self) -> &EngineMatcher {
        &self.matcher
    }

    /// Sanity check (used by tests): the aggregated set matches `content`
    /// exactly when some full-population subscription does.
    pub fn aggregation_agrees(&self, server: ServerId, content: &Content) -> bool {
        let Ok(index) = self.matcher.index(server) else {
            return false;
        };
        let full = index.match_count(content) > 0;
        let agg = self.upstream_matches(server, content);
        full == agg
    }

    /// Verifies the cover-set invariant at one proxy: no member covers
    /// another, and every live subscription is covered by some member.
    pub fn cover_is_minimal_and_complete(&self, server: ServerId) -> bool {
        let Ok(index) = self.matcher.index(server) else {
            return false;
        };
        let cover = &self.covers[server.as_usize()];
        let members: Vec<&Subscription> = cover.iter().map(|(_, s)| s).collect();
        for (i, a) in members.iter().enumerate() {
            for (j, b) in members.iter().enumerate() {
                if i != j && covers(a, b) {
                    return false;
                }
            }
        }
        index
            .iter()
            .all(|(_, sub)| members.iter().any(|m| covers(m, sub)))
    }
}

impl Matcher for AggregatedMatcher {
    fn matched_servers(&self, page: PageId) -> Vec<(ServerId, u32)> {
        self.matcher.matched_servers(page)
    }

    fn match_count(&self, page: PageId, server: ServerId) -> u32 {
        self.matcher.match_count(page, server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Predicate, Value};

    fn sports() -> Subscription {
        Subscription::new(vec![Predicate::eq("category", Value::str("sports"))])
    }

    fn sports_long() -> Subscription {
        Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::ge("bytes", 1_000),
        ])
    }

    #[test]
    fn covered_subscriptions_do_not_forward() {
        let mut m = AggregatedMatcher::new(2);
        let s0 = ServerId::new(0);
        let (_, fwd) = m.subscribe(s0, sports()).unwrap();
        assert!(fwd);
        let (_, fwd) = m.subscribe(s0, sports_long()).unwrap();
        assert!(!fwd);
        assert_eq!(m.upstream_len(s0).unwrap(), 1);
        // Another server aggregates independently.
        let s1 = ServerId::new(1);
        let (_, fwd) = m.subscribe(s1, sports_long()).unwrap();
        assert!(fwd);
        assert_eq!(m.upstream_len(s1).unwrap(), 1);
        assert_eq!(m.server_count(), 2);
    }

    #[test]
    fn wider_subscription_replaces_upstream() {
        let mut m = AggregatedMatcher::new(1);
        let s0 = ServerId::new(0);
        m.subscribe(s0, sports_long()).unwrap();
        let (_, fwd) = m.subscribe(s0, sports()).unwrap();
        assert!(fwd);
        assert_eq!(m.upstream_len(s0).unwrap(), 1);
        let up: Vec<_> = m.upstream(s0).unwrap().collect();
        assert_eq!(up[0], &sports());
    }

    #[test]
    fn unsubscribing_maximal_member_uncovers() {
        let mut m = AggregatedMatcher::new(1);
        let s0 = ServerId::new(0);
        let (wide_id, _) = m.subscribe(s0, sports()).unwrap();
        let (_narrow_id, fwd) = m.subscribe(s0, sports_long()).unwrap();
        assert!(!fwd);
        // Removing the wide one resurfaces the narrow one upstream.
        let changed = m.unsubscribe(s0, wide_id).unwrap();
        assert!(changed);
        assert_eq!(m.upstream_len(s0).unwrap(), 1);
        let up: Vec<_> = m.upstream(s0).unwrap().collect();
        assert_eq!(up[0], &sports_long());
    }

    #[test]
    fn unsubscribing_covered_member_is_silent() {
        let mut m = AggregatedMatcher::new(1);
        let s0 = ServerId::new(0);
        m.subscribe(s0, sports()).unwrap();
        let (narrow_id, _) = m.subscribe(s0, sports_long()).unwrap();
        let changed = m.unsubscribe(s0, narrow_id).unwrap();
        assert!(!changed);
        assert_eq!(m.upstream_len(s0).unwrap(), 1);
    }

    #[test]
    fn aggregation_agrees_with_full_population() {
        let mut m = AggregatedMatcher::new(1);
        let s0 = ServerId::new(0);
        m.subscribe(s0, sports()).unwrap();
        m.subscribe(s0, sports_long()).unwrap();
        m.subscribe(
            s0,
            Subscription::new(vec![Predicate::contains("tags", "tennis")]),
        )
        .unwrap();
        let contents = [
            Content::new().with("category", Value::str("sports")),
            Content::new().with("category", Value::str("politics")),
            Content::new().with("tags", Value::tags(["tennis"])),
            Content::new(),
        ];
        for c in &contents {
            assert!(m.aggregation_agrees(s0, c), "content {c:?}");
        }
        assert!(m.cover_is_minimal_and_complete(s0));
    }

    #[test]
    fn matcher_delegation_counts_full_population() {
        let mut m = AggregatedMatcher::new(1);
        let s0 = ServerId::new(0);
        m.subscribe(s0, sports()).unwrap();
        m.subscribe(s0, sports_long()).unwrap();
        let page = PageId::new(0);
        m.register_page(
            page,
            Content::new()
                .with("category", Value::str("sports"))
                .with("bytes", Value::int(5_000)),
        );
        // Both subscriptions match, even though only one is upstream.
        assert_eq!(m.match_count(page, s0), 2);
        assert_eq!(m.matched_servers(page), vec![(s0, 2)]);
        assert_eq!(m.matcher().server_count(), 1);
    }

    #[test]
    fn unknown_server_errors() {
        let mut m = AggregatedMatcher::new(1);
        assert!(m.subscribe(ServerId::new(5), sports()).is_err());
        assert!(m.upstream(ServerId::new(5)).is_err());
        assert!(m.upstream_len(ServerId::new(5)).is_err());
        assert!(!m.upstream_matches(ServerId::new(5), &Content::new()));
        assert!(!m.aggregation_agrees(ServerId::new(5), &Content::new()));
    }
}
