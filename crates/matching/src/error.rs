//! Matching errors.

use std::error::Error;
use std::fmt;

use pscd_types::ServerId;

use crate::SubscriptionId;

/// Error produced by the matching engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatchError {
    /// A server id was outside the configured proxy population.
    UnknownServer {
        /// The rejected server.
        server: ServerId,
        /// Number of configured servers.
        server_count: u16,
    },
    /// A subscription id was not registered (or already removed).
    UnknownSubscription {
        /// The rejected subscription id.
        id: SubscriptionId,
    },
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::UnknownServer {
                server,
                server_count,
            } => write!(
                f,
                "{server} out of range: only {server_count} servers configured"
            ),
            MatchError::UnknownSubscription { id } => {
                write!(f, "{id} is not registered")
            }
        }
    }
}

impl Error for MatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MatchError::UnknownServer {
            server: ServerId::new(5),
            server_count: 3,
        };
        assert!(e.to_string().contains("server5"));
        let e = MatchError::UnknownSubscription {
            id: SubscriptionId::new(8),
        };
        assert!(e.to_string().contains("sub8"));
    }
}
