//! Predicates over content attributes.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Content, Value};

/// The comparison operator of a [`Predicate`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Attribute equals the value.
    Eq(Value),
    /// Attribute exists and differs from the value (same type).
    Ne(Value),
    /// Integer attribute `< bound`.
    Lt(i64),
    /// Integer attribute `<= bound`.
    Le(i64),
    /// Integer attribute `> bound`.
    Gt(i64),
    /// Integer attribute `>= bound`.
    Ge(i64),
    /// Tags attribute contains the tag (or string attribute equals it).
    Contains(String),
    /// String attribute starts with the prefix.
    Prefix(String),
    /// Attribute exists, regardless of value.
    Exists,
}

/// One atomic condition on one attribute; subscriptions are conjunctions of
/// predicates.
///
/// # Examples
///
/// ```
/// use pscd_matching::{Content, Predicate, Value};
/// let p = Predicate::ge("words", 500);
/// let long = Content::new().with("words", Value::int(900));
/// let short = Content::new().with("words", Value::int(120));
/// assert!(p.eval(&long));
/// assert!(!p.eval(&short));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    attr: String,
    op: Op,
}

impl Predicate {
    /// Creates a predicate from an attribute name and operator.
    pub fn new(attr: impl Into<String>, op: Op) -> Self {
        Self {
            attr: attr.into(),
            op,
        }
    }

    /// `attr == value`.
    pub fn eq(attr: impl Into<String>, value: Value) -> Self {
        Self::new(attr, Op::Eq(value))
    }

    /// `attr != value` (attribute must exist).
    pub fn ne(attr: impl Into<String>, value: Value) -> Self {
        Self::new(attr, Op::Ne(value))
    }

    /// `attr < bound` for integer attributes.
    pub fn lt(attr: impl Into<String>, bound: i64) -> Self {
        Self::new(attr, Op::Lt(bound))
    }

    /// `attr <= bound` for integer attributes.
    pub fn le(attr: impl Into<String>, bound: i64) -> Self {
        Self::new(attr, Op::Le(bound))
    }

    /// `attr > bound` for integer attributes.
    pub fn gt(attr: impl Into<String>, bound: i64) -> Self {
        Self::new(attr, Op::Gt(bound))
    }

    /// `attr >= bound` for integer attributes.
    pub fn ge(attr: impl Into<String>, bound: i64) -> Self {
        Self::new(attr, Op::Ge(bound))
    }

    /// Tag membership: `tag ∈ attr` (for string attributes, equality).
    pub fn contains(attr: impl Into<String>, tag: impl Into<String>) -> Self {
        Self::new(attr, Op::Contains(tag.into()))
    }

    /// String prefix match.
    pub fn prefix(attr: impl Into<String>, prefix: impl Into<String>) -> Self {
        Self::new(attr, Op::Prefix(prefix.into()))
    }

    /// Attribute existence.
    pub fn exists(attr: impl Into<String>) -> Self {
        Self::new(attr, Op::Exists)
    }

    /// The attribute this predicate constrains.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// The comparison operator.
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// Evaluates the predicate against content. Missing attributes and type
    /// mismatches evaluate to `false` (a subscription about `words` cannot
    /// match a page that has no `words` attribute).
    pub fn eval(&self, content: &Content) -> bool {
        let Some(value) = content.get(&self.attr) else {
            return false;
        };
        match (&self.op, value) {
            (Op::Exists, _) => true,
            (Op::Eq(v), got) => v == got,
            (Op::Ne(v), got) => v.type_name() == got.type_name() && v != got,
            (Op::Lt(b), Value::Int(i)) => i < b,
            (Op::Le(b), Value::Int(i)) => i <= b,
            (Op::Gt(b), Value::Int(i)) => i > b,
            (Op::Ge(b), Value::Int(i)) => i >= b,
            (Op::Contains(tag), Value::Tags(tags)) => tags.contains(tag),
            (Op::Contains(tag), Value::Str(s)) => s == tag,
            (Op::Prefix(p), Value::Str(s)) => s.starts_with(p.as_str()),
            _ => false,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            Op::Eq(v) => write!(f, "{} == {v}", self.attr),
            Op::Ne(v) => write!(f, "{} != {v}", self.attr),
            Op::Lt(b) => write!(f, "{} < {b}", self.attr),
            Op::Le(b) => write!(f, "{} <= {b}", self.attr),
            Op::Gt(b) => write!(f, "{} > {b}", self.attr),
            Op::Ge(b) => write!(f, "{} >= {b}", self.attr),
            Op::Contains(t) => write!(f, "{} contains {t}", self.attr),
            Op::Prefix(p) => write!(f, "{} starts-with {p}", self.attr),
            Op::Exists => write!(f, "{} exists", self.attr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Content {
        Content::new()
            .with("category", Value::str("sports"))
            .with("words", Value::int(500))
            .with("tags", Value::tags(["tennis", "us-open"]))
    }

    #[test]
    fn eq_ne() {
        assert!(Predicate::eq("category", Value::str("sports")).eval(&page()));
        assert!(!Predicate::eq("category", Value::str("politics")).eval(&page()));
        assert!(Predicate::ne("category", Value::str("politics")).eval(&page()));
        assert!(!Predicate::ne("category", Value::str("sports")).eval(&page()));
        // Ne across types is false (type mismatch, not inequality).
        assert!(!Predicate::ne("category", Value::int(3)).eval(&page()));
    }

    #[test]
    fn integer_ranges() {
        let p = page();
        assert!(Predicate::lt("words", 501).eval(&p));
        assert!(!Predicate::lt("words", 500).eval(&p));
        assert!(Predicate::le("words", 500).eval(&p));
        assert!(Predicate::gt("words", 499).eval(&p));
        assert!(!Predicate::gt("words", 500).eval(&p));
        assert!(Predicate::ge("words", 500).eval(&p));
        // Range ops on non-int attributes are false.
        assert!(!Predicate::lt("category", 10).eval(&p));
    }

    #[test]
    fn contains_and_prefix() {
        let p = page();
        assert!(Predicate::contains("tags", "tennis").eval(&p));
        assert!(!Predicate::contains("tags", "golf").eval(&p));
        assert!(Predicate::contains("category", "sports").eval(&p));
        assert!(Predicate::prefix("category", "spo").eval(&p));
        assert!(!Predicate::prefix("category", "xx").eval(&p));
        assert!(!Predicate::prefix("words", "5").eval(&p)); // type mismatch
    }

    #[test]
    fn exists_and_missing() {
        let p = page();
        assert!(Predicate::exists("tags").eval(&p));
        assert!(!Predicate::exists("author").eval(&p));
        assert!(!Predicate::eq("author", Value::str("x")).eval(&p));
    }

    #[test]
    fn display_round() {
        assert_eq!(Predicate::ge("words", 10).to_string(), "words >= 10");
        assert_eq!(
            Predicate::contains("tags", "a").to_string(),
            "tags contains a"
        );
    }
}
