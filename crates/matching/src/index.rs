//! Counting-based subscription index.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::{Content, Op, Subscription, SubscriptionId, Value};

/// Position of a predicate inside its subscription.
type PredRef = (SubscriptionId, usize);

/// A matching engine over many subscriptions, organized for sub-linear
/// matching in the style of the *counting algorithm* (Yan & Garcia-Molina;
/// Fabret et al., SIGMOD'01):
///
/// * Equality predicates are hash-indexed per `(attribute, value)`, so one
///   lookup per content attribute finds every satisfied equality predicate.
/// * `Contains` predicates on tag sets are hash-indexed per
///   `(attribute, tag)`.
/// * The remaining operator classes (ranges, prefixes, …) are grouped per
///   attribute and evaluated only when the content carries that attribute.
///
/// Each satisfied predicate increments its subscription's counter; a
/// subscription matches when all its predicates are satisfied.
///
/// # Examples
///
/// ```
/// use pscd_matching::{Content, Predicate, Subscription, SubscriptionIndex, Value};
/// let mut idx = SubscriptionIndex::new();
/// let id = idx.insert(Subscription::new(vec![Predicate::ge("words", 100)]));
/// let hit = Content::new().with("words", Value::int(150));
/// let miss = Content::new().with("words", Value::int(50));
/// assert_eq!(idx.match_count(&hit), 1);
/// assert_eq!(idx.match_count(&miss), 0);
/// idx.remove(id);
/// assert_eq!(idx.match_count(&hit), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubscriptionIndex {
    subscriptions: HashMap<SubscriptionId, Subscription>,
    next_id: u64,
    /// `(attr, value) -> equality predicates` satisfied by that exact value.
    eq_index: HashMap<(String, Value), Vec<PredRef>>,
    /// `(attr, tag) -> Contains predicates` satisfied when the tag is present.
    tag_index: HashMap<(String, String), Vec<PredRef>>,
    /// `attr -> other predicates` evaluated when the attribute is present.
    scan_index: HashMap<String, Vec<PredRef>>,
    /// Subscriptions with no predicates (match everything).
    wildcards: BTreeSet<SubscriptionId>,
}

impl SubscriptionIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// `true` if no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Registers a subscription and returns its id.
    pub fn insert(&mut self, subscription: Subscription) -> SubscriptionId {
        let id = SubscriptionId::new(self.next_id);
        self.next_id += 1;
        if subscription.is_empty() {
            self.wildcards.insert(id);
        }
        for (pred_idx, pred) in subscription.predicates().iter().enumerate() {
            let entry = (id, pred_idx);
            match pred.op() {
                Op::Eq(v) => self
                    .eq_index
                    .entry((pred.attr().to_owned(), v.clone()))
                    .or_default()
                    .push(entry),
                Op::Contains(tag) => self
                    .tag_index
                    .entry((pred.attr().to_owned(), tag.clone()))
                    .or_default()
                    .push(entry),
                _ => self
                    .scan_index
                    .entry(pred.attr().to_owned())
                    .or_default()
                    .push(entry),
            }
        }
        self.subscriptions.insert(id, subscription);
        id
    }

    /// Unregisters a subscription. Returns the subscription if it existed.
    pub fn remove(&mut self, id: SubscriptionId) -> Option<Subscription> {
        let sub = self.subscriptions.remove(&id)?;
        self.wildcards.remove(&id);
        for pred in sub.predicates() {
            let bucket = match pred.op() {
                Op::Eq(v) => self.eq_index.get_mut(&(pred.attr().to_owned(), v.clone())),
                Op::Contains(tag) => self
                    .tag_index
                    .get_mut(&(pred.attr().to_owned(), tag.clone())),
                _ => self.scan_index.get_mut(pred.attr()),
            };
            if let Some(bucket) = bucket {
                bucket.retain(|&(sid, _)| sid != id);
            }
        }
        Some(sub)
    }

    /// Looks up a registered subscription.
    pub fn get(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.subscriptions.get(&id)
    }

    /// The ids of all subscriptions matching `content`, sorted by id.
    pub fn matches(&self, content: &Content) -> Vec<SubscriptionId> {
        let mut counts: HashMap<SubscriptionId, usize> = HashMap::new();
        let bump = |refs: &[PredRef], counts: &mut HashMap<SubscriptionId, usize>| {
            for &(id, _) in refs {
                *counts.entry(id).or_insert(0) += 1;
            }
        };
        for (attr, value) in content.iter() {
            if let Some(refs) = self.eq_index.get(&(attr.to_owned(), value.clone())) {
                bump(refs, &mut counts);
            }
            match value {
                Value::Tags(tags) => {
                    for tag in tags {
                        if let Some(refs) = self.tag_index.get(&(attr.to_owned(), tag.clone())) {
                            bump(refs, &mut counts);
                        }
                    }
                }
                Value::Str(s) => {
                    // `Contains` on a string attribute means equality.
                    if let Some(refs) = self.tag_index.get(&(attr.to_owned(), s.clone())) {
                        bump(refs, &mut counts);
                    }
                }
                Value::Int(_) => {}
            }
            if let Some(refs) = self.scan_index.get(attr) {
                for &(id, pred_idx) in refs {
                    let sub = &self.subscriptions[&id];
                    if sub.predicates()[pred_idx].eval(content) {
                        *counts.entry(id).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut out: Vec<SubscriptionId> = counts
            .into_iter()
            .filter(|&(id, n)| n == self.subscriptions[&id].len())
            .map(|(id, _)| id)
            .chain(self.wildcards.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// The number of subscriptions matching `content` — the `f_S(p)`
    /// quantity consumed by push-time strategies.
    pub fn match_count(&self, content: &Content) -> usize {
        self.matches(content).len()
    }

    /// Iterates over all registered subscriptions in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SubscriptionId, &Subscription)> {
        let mut ids: Vec<_> = self.subscriptions.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| (id, &self.subscriptions[&id]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Predicate;

    fn sports_page() -> Content {
        Content::new()
            .with("category", Value::str("sports"))
            .with("words", Value::int(800))
            .with("tags", Value::tags(["tennis", "us-open"]))
    }

    #[test]
    fn eq_indexed_matching() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("sports"),
        )]));
        let _b = idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("politics"),
        )]));
        assert_eq!(idx.matches(&sports_page()), vec![a]);
    }

    #[test]
    fn conjunction_requires_all_predicates() {
        let mut idx = SubscriptionIndex::new();
        let id = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::ge("words", 1000),
        ]));
        assert!(idx.matches(&sports_page()).is_empty());
        let long = sports_page().with("words", Value::int(1200));
        assert_eq!(idx.matches(&long), vec![id]);
    }

    #[test]
    fn tag_membership_indexed() {
        let mut idx = SubscriptionIndex::new();
        let tennis = idx.insert(Subscription::new(vec![Predicate::contains(
            "tags", "tennis",
        )]));
        let _golf = idx.insert(Subscription::new(vec![Predicate::contains("tags", "golf")]));
        assert_eq!(idx.matches(&sports_page()), vec![tennis]);
    }

    #[test]
    fn contains_on_string_attr_is_equality() {
        let mut idx = SubscriptionIndex::new();
        let id = idx.insert(Subscription::new(vec![Predicate::contains(
            "category", "sports",
        )]));
        assert_eq!(idx.matches(&sports_page()), vec![id]);
    }

    #[test]
    fn wildcard_always_matches() {
        let mut idx = SubscriptionIndex::new();
        let w = idx.insert(Subscription::wildcard());
        assert_eq!(idx.matches(&Content::new()), vec![w]);
        assert_eq!(idx.matches(&sports_page()), vec![w]);
    }

    #[test]
    fn range_predicates_scan() {
        let mut idx = SubscriptionIndex::new();
        let lo = idx.insert(Subscription::new(vec![Predicate::lt("words", 900)]));
        let _hi = idx.insert(Subscription::new(vec![Predicate::gt("words", 900)]));
        assert_eq!(idx.matches(&sports_page()), vec![lo]);
    }

    #[test]
    fn remove_unregisters_everywhere() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::contains("tags", "tennis"),
            Predicate::ge("words", 1),
        ]));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.match_count(&sports_page()), 1);
        let removed = idx.remove(a).unwrap();
        assert_eq!(removed.len(), 3);
        assert!(idx.is_empty());
        assert_eq!(idx.match_count(&sports_page()), 0);
        assert!(idx.remove(a).is_none());
    }

    #[test]
    fn many_subscriptions_count() {
        let mut idx = SubscriptionIndex::new();
        for i in 0..50 {
            idx.insert(Subscription::new(vec![Predicate::ge("words", i * 100)]));
        }
        // words = 800 satisfies bounds 0..=800 -> i in 0..=8 -> 9 matches.
        assert_eq!(idx.match_count(&sports_page()), 9);
    }

    #[test]
    fn iter_lists_in_id_order() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::wildcard());
        let b = idx.insert(Subscription::new(vec![Predicate::exists("x")]));
        let ids: Vec<_> = idx.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
        assert_eq!(idx.iter().count(), 2);
        idx.remove(a);
        assert_eq!(idx.iter().count(), 1);
    }

    #[test]
    fn ids_are_unique_and_get_works() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::wildcard());
        let b = idx.insert(Subscription::wildcard());
        assert_ne!(a, b);
        assert!(idx.get(a).is_some());
        idx.remove(a);
        assert!(idx.get(a).is_none());
        assert!(idx.get(b).is_some());
    }
}
