//! Counting-based subscription index.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::frozen::FrozenScratch;
use crate::{Content, Op, Subscription, SubscriptionId, Value};

/// A predicate's position: `(dense subscription ordinal, predicate index)`.
///
/// Bucket entries address subscriptions by their *ordinal* — the position
/// in [`SubscriptionIndex::order`] — so the match kernel can count
/// satisfied predicates in a flat array instead of a hash map.
type Entry = (u32, u32);

/// Reusable counting scratch for the batched match kernel.
///
/// Holds one counter slot per registered subscription (by dense ordinal),
/// epoch-stamped so consecutive matches skip clearing: a slot's counter is
/// live only when its stamp equals the current epoch, which a new match
/// bumps in O(1). After warm-up (slots sized to the index, capacities
/// grown to the biggest result) a match makes **zero allocations** — the
/// property the `alloc_free` suite asserts.
///
/// One scratch serves any number of indexes and contents, as long as each
/// call sees a scratch at least as old as the previous one (the scratch
/// grows monotonically). Not `Sync`: use one scratch per worker thread.
///
/// # Examples
///
/// ```
/// use pscd_matching::{Content, MatchScratch, Predicate, Subscription, SubscriptionIndex, Value};
/// let mut idx = SubscriptionIndex::new();
/// let id = idx.insert(Subscription::new(vec![Predicate::ge("words", 100)]));
/// let mut scratch = MatchScratch::new();
/// let mut out = Vec::new();
/// idx.matches_into(&Content::new().with("words", Value::int(150)), &mut scratch, &mut out);
/// assert_eq!(out, vec![id]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Satisfied-predicate counters, indexed by ordinal; live only when
    /// the stamp matches the current epoch.
    counts: Vec<u32>,
    /// Epoch stamp per ordinal.
    stamp: Vec<u32>,
    /// The current match's epoch.
    epoch: u32,
    /// Ordinals touched by the current match.
    touched: Vec<u32>,
    /// Bitset/counter state for the frozen kernel
    /// ([`FrozenIndex`](crate::FrozenIndex)); one scratch serves both
    /// kernels.
    pub(crate) frozen: FrozenScratch,
}

impl MatchScratch {
    /// Creates an empty scratch; it sizes itself to the index on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new match epoch over `n` ordinals.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.counts.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: every stamp is stale, reset them all once.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Counts one satisfied predicate of ordinal `ord`.
    fn bump(&mut self, ord: u32) {
        let i = ord as usize;
        if self.stamp[i] == self.epoch {
            self.counts[i] += 1;
        } else {
            self.stamp[i] = self.epoch;
            self.counts[i] = 1;
            self.touched.push(ord);
        }
    }

    /// Counts one satisfied predicate for every entry in a bucket.
    fn bump_all(&mut self, refs: &[Entry]) {
        for &(ord, _) in refs {
            self.bump(ord);
        }
    }
}

/// A matching engine over many subscriptions, organized for sub-linear
/// matching in the style of the *counting algorithm* (Yan & Garcia-Molina;
/// Fabret et al., SIGMOD'01):
///
/// * Equality predicates are hash-indexed per attribute and then per
///   value, so one borrowed-key lookup per content attribute finds every
///   satisfied equality predicate.
/// * `Contains` predicates on tag sets are hash-indexed per attribute and
///   then per tag.
/// * The remaining operator classes (ranges, prefixes, …) are grouped per
///   attribute and evaluated only when the content carries that attribute.
///
/// Each satisfied predicate increments its subscription's counter; a
/// subscription matches when all its predicates are satisfied. The
/// counters live in a caller-provided [`MatchScratch`] keyed by dense
/// subscription ordinals, so the batched entry points
/// ([`SubscriptionIndex::matches_into`],
/// [`SubscriptionIndex::match_count_scratch`]) make zero steady-state
/// allocations; [`SubscriptionIndex::matches`] and
/// [`SubscriptionIndex::match_count`] are thin compatibility wrappers that
/// allocate a fresh scratch per call.
///
/// # Examples
///
/// ```
/// use pscd_matching::{Content, Predicate, Subscription, SubscriptionIndex, Value};
/// let mut idx = SubscriptionIndex::new();
/// let id = idx.insert(Subscription::new(vec![Predicate::ge("words", 100)]));
/// let hit = Content::new().with("words", Value::int(150));
/// let miss = Content::new().with("words", Value::int(50));
/// assert_eq!(idx.match_count(&hit), 1);
/// assert_eq!(idx.match_count(&miss), 0);
/// idx.remove(id);
/// assert_eq!(idx.match_count(&hit), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubscriptionIndex {
    subscriptions: HashMap<SubscriptionId, Subscription>,
    next_id: u64,
    /// Dense ordinal -> subscription id (swap-removed on unregister).
    order: Vec<SubscriptionId>,
    /// Subscription id -> its current dense ordinal.
    ordinal_of: HashMap<SubscriptionId, u32>,
    /// Predicate count per ordinal (a subscription matches when its
    /// counter reaches this).
    pred_count: Vec<u32>,
    /// `attr -> value -> equality predicates` satisfied by that value.
    eq_index: HashMap<String, HashMap<Value, Vec<Entry>>>,
    /// `attr -> tag -> Contains predicates` satisfied when the tag is present.
    tag_index: HashMap<String, HashMap<String, Vec<Entry>>>,
    /// `attr -> other predicates` evaluated when the attribute is present.
    scan_index: HashMap<String, Vec<Entry>>,
    /// Subscriptions with no predicates (match everything), ascending.
    /// Ids grow monotonically, so insertion keeps the order.
    wildcards: Vec<SubscriptionId>,
}

impl SubscriptionIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// `true` if no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Registers a subscription and returns its id.
    pub fn insert(&mut self, subscription: Subscription) -> SubscriptionId {
        let id = SubscriptionId::new(self.next_id);
        self.next_id += 1;
        let ordinal = self.order.len() as u32;
        self.order.push(id);
        self.ordinal_of.insert(id, ordinal);
        self.pred_count.push(subscription.len() as u32);
        if subscription.is_empty() {
            self.wildcards.push(id);
        }
        for (pred_idx, pred) in subscription.predicates().iter().enumerate() {
            let entry = (ordinal, pred_idx as u32);
            match pred.op() {
                Op::Eq(v) => self
                    .eq_index
                    .entry(pred.attr().to_owned())
                    .or_default()
                    .entry(v.clone())
                    .or_default()
                    .push(entry),
                Op::Contains(tag) => self
                    .tag_index
                    .entry(pred.attr().to_owned())
                    .or_default()
                    .entry(tag.clone())
                    .or_default()
                    .push(entry),
                _ => self
                    .scan_index
                    .entry(pred.attr().to_owned())
                    .or_default()
                    .push(entry),
            }
        }
        self.subscriptions.insert(id, subscription);
        id
    }

    /// Unregisters a subscription. Returns the subscription if it existed.
    pub fn remove(&mut self, id: SubscriptionId) -> Option<Subscription> {
        let sub = self.subscriptions.remove(&id)?;
        let ordinal = self
            .ordinal_of
            .remove(&id)
            .expect("registered subscriptions have ordinals");
        if sub.is_empty() {
            if let Ok(pos) = self.wildcards.binary_search(&id) {
                self.wildcards.remove(pos);
            }
        }
        self.drop_entries(&sub, ordinal);
        // Swap-remove the ordinal slot; the moved subscription (previously
        // last) takes over `ordinal` and its bucket entries are rewritten.
        let last = (self.order.len() - 1) as u32;
        self.order.swap_remove(ordinal as usize);
        self.pred_count.swap_remove(ordinal as usize);
        if ordinal != last {
            let moved = self.order[ordinal as usize];
            self.ordinal_of.insert(moved, ordinal);
            // Take the moved subscription out of the map while its bucket
            // entries are renumbered (no clone), then put it back.
            let moved_sub = self
                .subscriptions
                .remove(&moved)
                .expect("moved ordinal has a registered subscription");
            self.renumber_entries(&moved_sub, last, ordinal);
            self.subscriptions.insert(moved, moved_sub);
        }
        Some(sub)
    }

    /// Removes `sub`'s entries (held under `ordinal`) from its buckets.
    fn drop_entries(&mut self, sub: &Subscription, ordinal: u32) {
        for pred in sub.predicates() {
            let bucket = match pred.op() {
                Op::Eq(v) => self
                    .eq_index
                    .get_mut(pred.attr())
                    .and_then(|m| m.get_mut(v)),
                Op::Contains(tag) => self
                    .tag_index
                    .get_mut(pred.attr())
                    .and_then(|m| m.get_mut(tag)),
                _ => self.scan_index.get_mut(pred.attr()),
            };
            if let Some(bucket) = bucket {
                bucket.retain(|&(ord, _)| ord != ordinal);
            }
        }
    }

    /// Rewrites `sub`'s bucket entries from ordinal `from` to `to`.
    fn renumber_entries(&mut self, sub: &Subscription, from: u32, to: u32) {
        for pred in sub.predicates() {
            let bucket = match pred.op() {
                Op::Eq(v) => self
                    .eq_index
                    .get_mut(pred.attr())
                    .and_then(|m| m.get_mut(v)),
                Op::Contains(tag) => self
                    .tag_index
                    .get_mut(pred.attr())
                    .and_then(|m| m.get_mut(tag)),
                _ => self.scan_index.get_mut(pred.attr()),
            };
            if let Some(bucket) = bucket {
                for entry in bucket.iter_mut() {
                    if entry.0 == from {
                        entry.0 = to;
                    }
                }
            }
        }
    }

    /// Looks up a registered subscription.
    pub fn get(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.subscriptions.get(&id)
    }

    /// Counts satisfied predicates per touched ordinal into `scratch`.
    fn accumulate(&self, content: &Content, scratch: &mut MatchScratch) {
        scratch.begin(self.order.len());
        for (attr, value) in content.iter() {
            if let Some(refs) = self.eq_index.get(attr).and_then(|m| m.get(value)) {
                scratch.bump_all(refs);
            }
            match value {
                Value::Tags(tags) => {
                    if let Some(by_tag) = self.tag_index.get(attr) {
                        for tag in tags {
                            if let Some(refs) = by_tag.get(tag.as_str()) {
                                scratch.bump_all(refs);
                            }
                        }
                    }
                }
                Value::Str(s) => {
                    // `Contains` on a string attribute means equality.
                    if let Some(refs) = self.tag_index.get(attr).and_then(|m| m.get(s.as_str())) {
                        scratch.bump_all(refs);
                    }
                }
                Value::Int(_) => {}
            }
            if let Some(refs) = self.scan_index.get(attr) {
                for &(ord, pred_idx) in refs {
                    let sub = &self.subscriptions[&self.order[ord as usize]];
                    if sub.predicates()[pred_idx as usize].eval(content) {
                        scratch.bump(ord);
                    }
                }
            }
        }
    }

    /// The batched match kernel: writes the ids of all subscriptions
    /// matching `content` into `out` (cleared first), sorted by id.
    ///
    /// All bookkeeping lives in `scratch`; after warm-up the call makes
    /// zero allocations, which is what lets trace compilation evaluate
    /// millions of publishes without touching the allocator.
    pub fn matches_into(
        &self,
        content: &Content,
        scratch: &mut MatchScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        out.clear();
        self.accumulate(content, scratch);
        for &ord in &scratch.touched {
            if scratch.counts[ord as usize] == self.pred_count[ord as usize] {
                out.push(self.order[ord as usize]);
            }
        }
        out.extend_from_slice(&self.wildcards);
        out.sort_unstable();
    }

    /// The number of subscriptions matching `content`, counted in
    /// `scratch` without materializing the id list — the `f_S(p)` quantity
    /// consumed by push-time strategies, allocation-free.
    pub fn match_count_scratch(&self, content: &Content, scratch: &mut MatchScratch) -> usize {
        self.accumulate(content, scratch);
        let mut n = self.wildcards.len();
        for &ord in &scratch.touched {
            if scratch.counts[ord as usize] == self.pred_count[ord as usize] {
                n += 1;
            }
        }
        n
    }

    /// The ids of all subscriptions matching `content`, sorted by id.
    ///
    /// Compatibility wrapper over [`SubscriptionIndex::matches_into`] that
    /// allocates a fresh scratch per call; batch callers should hold a
    /// [`MatchScratch`] and reuse it.
    pub fn matches(&self, content: &Content) -> Vec<SubscriptionId> {
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        self.matches_into(content, &mut scratch, &mut out);
        out
    }

    /// The number of subscriptions matching `content` — the `f_S(p)`
    /// quantity consumed by push-time strategies.
    ///
    /// Compatibility wrapper over
    /// [`SubscriptionIndex::match_count_scratch`].
    pub fn match_count(&self, content: &Content) -> usize {
        let mut scratch = MatchScratch::new();
        self.match_count_scratch(content, &mut scratch)
    }

    /// Iterates over all registered subscriptions in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SubscriptionId, &Subscription)> {
        let mut ids: Vec<_> = self.subscriptions.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| (id, &self.subscriptions[&id]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Predicate;

    fn sports_page() -> Content {
        Content::new()
            .with("category", Value::str("sports"))
            .with("words", Value::int(800))
            .with("tags", Value::tags(["tennis", "us-open"]))
    }

    #[test]
    fn eq_indexed_matching() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("sports"),
        )]));
        let _b = idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("politics"),
        )]));
        assert_eq!(idx.matches(&sports_page()), vec![a]);
    }

    #[test]
    fn conjunction_requires_all_predicates() {
        let mut idx = SubscriptionIndex::new();
        let id = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::ge("words", 1000),
        ]));
        assert!(idx.matches(&sports_page()).is_empty());
        let long = sports_page().with("words", Value::int(1200));
        assert_eq!(idx.matches(&long), vec![id]);
    }

    #[test]
    fn tag_membership_indexed() {
        let mut idx = SubscriptionIndex::new();
        let tennis = idx.insert(Subscription::new(vec![Predicate::contains(
            "tags", "tennis",
        )]));
        let _golf = idx.insert(Subscription::new(vec![Predicate::contains("tags", "golf")]));
        assert_eq!(idx.matches(&sports_page()), vec![tennis]);
    }

    #[test]
    fn contains_on_string_attr_is_equality() {
        let mut idx = SubscriptionIndex::new();
        let id = idx.insert(Subscription::new(vec![Predicate::contains(
            "category", "sports",
        )]));
        assert_eq!(idx.matches(&sports_page()), vec![id]);
    }

    #[test]
    fn wildcard_always_matches() {
        let mut idx = SubscriptionIndex::new();
        let w = idx.insert(Subscription::wildcard());
        assert_eq!(idx.matches(&Content::new()), vec![w]);
        assert_eq!(idx.matches(&sports_page()), vec![w]);
    }

    #[test]
    fn range_predicates_scan() {
        let mut idx = SubscriptionIndex::new();
        let lo = idx.insert(Subscription::new(vec![Predicate::lt("words", 900)]));
        let _hi = idx.insert(Subscription::new(vec![Predicate::gt("words", 900)]));
        assert_eq!(idx.matches(&sports_page()), vec![lo]);
    }

    #[test]
    fn remove_unregisters_everywhere() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::contains("tags", "tennis"),
            Predicate::ge("words", 1),
        ]));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.match_count(&sports_page()), 1);
        let removed = idx.remove(a).unwrap();
        assert_eq!(removed.len(), 3);
        assert!(idx.is_empty());
        assert_eq!(idx.match_count(&sports_page()), 0);
        assert!(idx.remove(a).is_none());
    }

    #[test]
    fn swap_removed_ordinals_keep_matching() {
        // Removing an early subscription moves the last one into its
        // ordinal slot; its bucket entries must follow.
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::new(vec![Predicate::eq(
            "category",
            Value::str("sports"),
        )]));
        let b = idx.insert(Subscription::new(vec![Predicate::ge("words", 100)]));
        let c = idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::contains("tags", "tennis"),
        ]));
        assert_eq!(idx.matches(&sports_page()), vec![a, b, c]);
        idx.remove(a);
        assert_eq!(idx.matches(&sports_page()), vec![b, c]);
        idx.remove(b);
        assert_eq!(idx.matches(&sports_page()), vec![c]);
        let d = idx.insert(Subscription::new(vec![Predicate::lt("words", 10_000)]));
        assert_eq!(idx.matches(&sports_page()), vec![c, d]);
    }

    #[test]
    fn scratch_reuse_across_indexes_and_contents() {
        let mut small = SubscriptionIndex::new();
        let s = small.insert(Subscription::new(vec![Predicate::contains(
            "tags", "tennis",
        )]));
        let mut big = SubscriptionIndex::new();
        let mut expected = Vec::new();
        for i in 0..40 {
            expected.push(big.insert(Subscription::new(vec![Predicate::ge("words", i * 10)])));
        }
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        big.matches_into(&sports_page(), &mut scratch, &mut out);
        assert_eq!(out.len(), 40);
        assert_eq!(out, expected);
        small.matches_into(&sports_page(), &mut scratch, &mut out);
        assert_eq!(out, vec![s]);
        assert_eq!(small.match_count_scratch(&Content::new(), &mut scratch), 0);
        big.matches_into(&sports_page(), &mut scratch, &mut out);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn scratch_and_wrapper_agree() {
        let mut idx = SubscriptionIndex::new();
        for i in 0..20 {
            idx.insert(Subscription::new(vec![Predicate::ge("words", i * 100)]));
        }
        idx.insert(Subscription::wildcard());
        idx.insert(Subscription::new(vec![
            Predicate::eq("category", Value::str("sports")),
            Predicate::contains("tags", "us-open"),
        ]));
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        for content in [
            sports_page(),
            Content::new(),
            sports_page().with("words", Value::int(5)),
        ] {
            idx.matches_into(&content, &mut scratch, &mut out);
            assert_eq!(out, idx.matches(&content));
            assert_eq!(
                idx.match_count_scratch(&content, &mut scratch),
                idx.match_count(&content)
            );
        }
    }

    #[test]
    fn many_subscriptions_count() {
        let mut idx = SubscriptionIndex::new();
        for i in 0..50 {
            idx.insert(Subscription::new(vec![Predicate::ge("words", i * 100)]));
        }
        // words = 800 satisfies bounds 0..=800 -> i in 0..=8 -> 9 matches.
        assert_eq!(idx.match_count(&sports_page()), 9);
    }

    #[test]
    fn iter_lists_in_id_order() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::wildcard());
        let b = idx.insert(Subscription::new(vec![Predicate::exists("x")]));
        let ids: Vec<_> = idx.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
        assert_eq!(idx.iter().count(), 2);
        idx.remove(a);
        assert_eq!(idx.iter().count(), 1);
    }

    #[test]
    fn ids_are_unique_and_get_works() {
        let mut idx = SubscriptionIndex::new();
        let a = idx.insert(Subscription::wildcard());
        let b = idx.insert(Subscription::wildcard());
        assert_ne!(a, b);
        assert!(idx.get(a).is_some());
        idx.remove(a);
        assert!(idx.get(a).is_none());
        assert!(idx.get(b).is_some());
    }
}
