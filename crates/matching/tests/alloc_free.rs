//! Proves the batched match kernel is allocation-free in steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! builds a heterogeneous index (equality, tag, range, wildcard
//! subscriptions), warms one `MatchScratch` and output buffer past their
//! one-time growth, then matches every content again and asserts the
//! allocation counter did not move — the `matches_into` /
//! `match_count_scratch` contract the publish fan-out loops rely on.
//!
//! Everything lives in ONE `#[test]` so no harness bookkeeping runs — and
//! allocates — inside the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pscd_matching::{
    Content, EngineMatcher, FrozenIndex, MatchScratch, Predicate, Subscription, SubscriptionIndex,
    SymbolTable, Value,
};
use pscd_types::{PageId, ServerId};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_matching_does_not_allocate() {
    let categories = ["sports", "politics", "tech", "music", "science"];
    let tags = ["tennis", "elections", "ai", "jazz", "space", "live"];

    // A populated index exercising every bucket type: equality pairs,
    // tag containment, range predicates (the scan path), wildcards.
    let mut index = SubscriptionIndex::new();
    for i in 0..2_000usize {
        let cat = categories[i % categories.len()];
        let tag = tags[i % tags.len()];
        let sub = match i % 4 {
            0 => Subscription::new(vec![Predicate::eq("category", Value::str(cat))]),
            1 => Subscription::new(vec![
                Predicate::eq("category", Value::str(cat)),
                Predicate::contains("tags", tag),
            ]),
            2 => Subscription::new(vec![Predicate::ge("bytes", (i as i64 % 16) * 1_024)]),
            _ => Subscription::wildcard(),
        };
        index.insert(sub);
    }

    // A per-proxy matcher over the same kind of mix, driving the batched
    // `matched_servers_into` fan-out API.
    let mut engine = EngineMatcher::new(8);
    for i in 0..400usize {
        let server = ServerId::new((i % 8) as u16);
        let cat = categories[i % categories.len()];
        engine
            .subscribe(
                server,
                Subscription::new(vec![Predicate::eq("category", Value::str(cat))]),
            )
            .unwrap();
    }

    let contents: Vec<Content> = (0..64usize)
        .map(|i| {
            Content::new()
                .with("category", Value::str(categories[i % categories.len()]))
                .with("tags", Value::tags([tags[i % tags.len()]]))
                .with("bytes", Value::int((i as i64 % 20) * 1_024))
        })
        .collect();
    for (i, content) in contents.iter().enumerate() {
        engine.register_page(PageId::new(i as u32), content.clone());
    }

    // The frozen kernel over the same population: standalone index and
    // the engine's per-proxy frozen fan-out path.
    let mut table = SymbolTable::new();
    let frozen = FrozenIndex::freeze(&index, &mut table);
    engine.freeze();
    assert!(engine.is_frozen());

    let mut scratch = MatchScratch::new();
    let mut out = Vec::new();
    let mut fanout = Vec::new();
    let mut frozen_out = Vec::new();

    // Warm-up: every content once, so scratch arrays, the touched list,
    // and the output buffers reach their high-water marks.
    let mut warm_matches = 0usize;
    for content in &contents {
        index.matches_into(content, &mut scratch, &mut out);
        warm_matches += out.len();
        warm_matches += index.match_count_scratch(content, &mut scratch);
        frozen.matches_into(&table, content, &mut scratch, &mut frozen_out);
        assert_eq!(frozen_out, out, "frozen and legacy kernels disagree");
        warm_matches += frozen_out.len();
        warm_matches += frozen.match_count_scratch(&table, content, &mut scratch);
    }
    for i in 0..contents.len() {
        engine.matched_servers_into(PageId::new(i as u32), &mut scratch, &mut fanout);
        warm_matches += fanout.len();
    }
    assert!(warm_matches > 0, "warm-up matched nothing — bad fixture");

    // Measurement window: the same calls must not touch the allocator —
    // the legacy kernel, the frozen kernel, and the frozen engine fan-out.
    let before = allocations();
    let mut steady_matches = 0usize;
    for _ in 0..4 {
        for content in &contents {
            index.matches_into(content, &mut scratch, &mut out);
            steady_matches += out.len();
            steady_matches += index.match_count_scratch(content, &mut scratch);
            frozen.matches_into(&table, content, &mut scratch, &mut frozen_out);
            steady_matches += frozen_out.len();
            steady_matches += frozen.match_count_scratch(&table, content, &mut scratch);
        }
        for i in 0..contents.len() {
            engine.matched_servers_into(PageId::new(i as u32), &mut scratch, &mut fanout);
            steady_matches += fanout.len();
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{} allocation(s) across {} steady-state matches",
        after - before,
        steady_matches,
    );
    assert_eq!(steady_matches, warm_matches * 4);
}
