//! Property tests: the counting index must agree with brute-force
//! evaluation, and the covering relation must be semantically sound.

use proptest::prelude::*;

use pscd_matching::{
    covers, AggregatedMatcher, Content, Op, Predicate, Subscription, SubscriptionIndex, Value,
};
use pscd_types::ServerId;

const ATTRS: [&str; 4] = ["category", "words", "tags", "author"];
const STRINGS: [&str; 5] = ["sports", "politics", "tech", "music", "science"];
const TAGS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::int),
        proptest::sample::select(STRINGS.to_vec()).prop_map(Value::str),
        proptest::collection::btree_set(proptest::sample::select(TAGS.to_vec()), 0..4)
            .prop_map(|set| Value::tags(set.into_iter().collect::<Vec<_>>())),
    ]
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let attr = proptest::sample::select(ATTRS.to_vec());
    prop_oneof![
        (attr.clone(), value_strategy()).prop_map(|(a, v)| Predicate::new(a, Op::Eq(v))),
        (attr.clone(), value_strategy()).prop_map(|(a, v)| Predicate::new(a, Op::Ne(v))),
        (attr.clone(), -50i64..50).prop_map(|(a, b)| Predicate::lt(a, b)),
        (attr.clone(), -50i64..50).prop_map(|(a, b)| Predicate::le(a, b)),
        (attr.clone(), -50i64..50).prop_map(|(a, b)| Predicate::gt(a, b)),
        (attr.clone(), -50i64..50).prop_map(|(a, b)| Predicate::ge(a, b)),
        (attr.clone(), proptest::sample::select(TAGS.to_vec()))
            .prop_map(|(a, t)| Predicate::contains(a, t)),
        (
            attr.clone(),
            proptest::sample::select(vec!["s", "sp", "spo", "te"])
        )
            .prop_map(|(a, p)| Predicate::prefix(a, p)),
        attr.prop_map(Predicate::exists),
    ]
}

fn subscription_strategy() -> impl Strategy<Value = Subscription> {
    proptest::collection::vec(predicate_strategy(), 0..4).prop_map(Subscription::new)
}

fn content_strategy() -> impl Strategy<Value = Content> {
    proptest::collection::btree_map(
        proptest::sample::select(ATTRS.to_vec()),
        value_strategy(),
        0..4,
    )
    .prop_map(|attrs| {
        let mut c = Content::new();
        for (k, v) in attrs {
            c.set(k, v);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The counting index returns exactly the subscriptions whose
    /// conjunctions evaluate true (brute-force oracle).
    #[test]
    fn index_agrees_with_brute_force(
        subs in proptest::collection::vec(subscription_strategy(), 0..20),
        contents in proptest::collection::vec(content_strategy(), 0..10),
    ) {
        let mut index = SubscriptionIndex::new();
        let ids: Vec<_> = subs.iter().cloned().map(|s| index.insert(s)).collect();
        for content in &contents {
            let got = index.matches(content);
            let expected: Vec<_> = ids
                .iter()
                .zip(&subs)
                .filter(|(_, s)| s.matches(content))
                .map(|(&id, _)| id)
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    /// Removal makes the index forget the subscription — and only it.
    #[test]
    fn removal_is_precise(
        subs in proptest::collection::vec(subscription_strategy(), 1..15),
        content in content_strategy(),
        victim_idx in 0usize..15,
    ) {
        let mut index = SubscriptionIndex::new();
        let ids: Vec<_> = subs.iter().cloned().map(|s| index.insert(s)).collect();
        let victim = ids[victim_idx % ids.len()];
        index.remove(victim);
        let got = index.matches(&content);
        prop_assert!(!got.contains(&victim));
        let expected: Vec<_> = ids
            .iter()
            .zip(&subs)
            .filter(|(&id, s)| id != victim && s.matches(&content))
            .map(|(&id, _)| id)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Whenever `covers(a, b)` holds, every content matching `b` matches
    /// `a` (covering is semantically sound, never a false positive).
    #[test]
    fn covering_soundness(
        a in subscription_strategy(),
        b in subscription_strategy(),
        contents in proptest::collection::vec(content_strategy(), 0..25),
    ) {
        if covers(&a, &b) {
            for c in &contents {
                prop_assert!(
                    !b.matches(c) || a.matches(c),
                    "covering violated: a = {a}, b = {b}"
                );
            }
        }
    }

    /// Covering is reflexive and transitive on random subscriptions.
    #[test]
    fn covering_is_a_preorder(
        a in subscription_strategy(),
        b in subscription_strategy(),
        c in subscription_strategy(),
    ) {
        prop_assert!(covers(&a, &a));
        if covers(&a, &b) && covers(&b, &c) {
            // Transitivity may fail for a conservative checker only by
            // returning false; it must never be inconsistent semantically.
            // We check the semantic form via sampled contents in
            // covering_soundness; here we check the common algebraic case.
            let _ = covers(&a, &c);
        }
    }

    /// The wildcard covers everything and matches everything.
    #[test]
    fn wildcard_is_top(s in subscription_strategy(), content in content_strategy()) {
        let wildcard = Subscription::wildcard();
        prop_assert!(covers(&wildcard, &s));
        prop_assert!(wildcard.matches(&content));
    }

    /// The broker aggregation is transparent: the cover set matches a
    /// content exactly when the full subscription population does, and the
    /// cover stays minimal and complete through subscribe/unsubscribe
    /// churn.
    #[test]
    fn aggregation_is_transparent(
        subs in proptest::collection::vec(subscription_strategy(), 1..12),
        contents in proptest::collection::vec(content_strategy(), 0..12),
        remove_mask in proptest::collection::vec(proptest::bool::ANY, 1..12),
    ) {
        let server = ServerId::new(0);
        let mut m = AggregatedMatcher::new(1);
        let mut ids = Vec::new();
        for s in &subs {
            let (id, _) = m.subscribe(server, s.clone()).unwrap();
            ids.push(id);
        }
        prop_assert!(m.cover_is_minimal_and_complete(server));
        for c in &contents {
            prop_assert!(m.aggregation_agrees(server, c));
        }
        // Remove a subset and re-check the invariants.
        for (id, &remove) in ids.iter().zip(&remove_mask) {
            if remove {
                m.unsubscribe(server, *id).unwrap();
            }
        }
        prop_assert!(m.cover_is_minimal_and_complete(server));
        for c in &contents {
            prop_assert!(m.aggregation_agrees(server, c));
        }
    }
}
