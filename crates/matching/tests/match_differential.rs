//! Differential proof for the frozen match kernel: [`FrozenIndex`] vs. the
//! mutable [`SubscriptionIndex`] vs. brute-force predicate evaluation must
//! be bit-identical — same match-id sets, same counts — over rotating
//! subscription shapes, content shapes, insert/remove churn, and the
//! wildcard/empty edge cases. The end-to-end `SimResult` half of the
//! differential (all 12 strategies) lives in
//! `crates/sim/tests/frozen_differential.rs`.

use proptest::prelude::*;

use pscd_matching::{
    Content, FrozenIndex, MatchScratch, Op, Predicate, Subscription, SubscriptionIndex,
    SymbolTable, Value,
};

const ATTRS: [&str; 4] = ["category", "words", "tags", "author"];
const STRINGS: [&str; 5] = ["sports", "politics", "tech", "music", "science"];
// "zz" never appears in any predicate operand, so contents drawing it
// exercise the uninterned-string paths of the frozen kernel.
const TAGS: [&str; 7] = ["a", "b", "c", "d", "e", "f", "zz"];

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::int),
        proptest::sample::select(STRINGS.to_vec()).prop_map(Value::str),
        proptest::collection::btree_set(proptest::sample::select(TAGS.to_vec()), 0..4)
            .prop_map(|set| Value::tags(set.into_iter().collect::<Vec<_>>())),
    ]
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let attr = proptest::sample::select(ATTRS.to_vec());
    prop_oneof![
        (attr.clone(), value_strategy()).prop_map(|(a, v)| Predicate::new(a, Op::Eq(v))),
        (attr.clone(), value_strategy()).prop_map(|(a, v)| Predicate::new(a, Op::Ne(v))),
        (attr.clone(), -50i64..50).prop_map(|(a, b)| Predicate::lt(a, b)),
        (attr.clone(), -50i64..50).prop_map(|(a, b)| Predicate::le(a, b)),
        (attr.clone(), -50i64..50).prop_map(|(a, b)| Predicate::gt(a, b)),
        (attr.clone(), -50i64..50).prop_map(|(a, b)| Predicate::ge(a, b)),
        (attr.clone(), proptest::sample::select(TAGS[..6].to_vec()))
            .prop_map(|(a, t)| Predicate::contains(a, t)),
        (
            attr.clone(),
            proptest::sample::select(vec!["s", "sp", "spo", "te"])
        )
            .prop_map(|(a, p)| Predicate::prefix(a, p)),
        attr.prop_map(Predicate::exists),
    ]
}

/// Rotates through every frozen class: wildcards (0 predicates), singles
/// (1), doubles (2), and multis (3..5).
fn subscription_strategy() -> impl Strategy<Value = Subscription> {
    proptest::collection::vec(predicate_strategy(), 0..5).prop_map(Subscription::new)
}

fn content_strategy() -> impl Strategy<Value = Content> {
    proptest::collection::btree_map(
        proptest::sample::select(ATTRS.to_vec()),
        value_strategy(),
        0..4,
    )
    .prop_map(|attrs| {
        let mut c = Content::new();
        for (k, v) in attrs {
            c.set(k, v);
        }
        c
    })
}

/// Freezes `index` and checks all three kernels agree on every content:
/// brute force (the oracle), the mutable counting index, and the frozen
/// kernel — ids and counts both.
fn assert_differential(index: &SubscriptionIndex, contents: &[Content]) {
    let mut table = SymbolTable::new();
    let frozen = FrozenIndex::freeze(index, &mut table);
    assert_eq!(frozen.len(), index.len());
    let mut scratch = MatchScratch::new();
    let mut frozen_ids = Vec::new();
    for content in contents {
        let brute: Vec<_> = index
            .iter()
            .filter(|(_, s)| s.matches(content))
            .map(|(id, _)| id)
            .collect();
        let legacy = index.matches(content);
        frozen.matches_into(&table, content, &mut scratch, &mut frozen_ids);
        assert_eq!(&legacy, &brute, "legacy vs brute force");
        assert_eq!(&frozen_ids, &brute, "frozen vs brute force");
        let n = frozen.match_count_scratch(&table, content, &mut scratch);
        assert_eq!(n, brute.len(), "frozen count vs brute force");
        assert_eq!(index.match_count(content), brute.len(), "legacy count");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Freeze-of-fresh-index: all three kernels agree on random
    /// subscription populations and contents.
    #[test]
    fn frozen_agrees_with_legacy_and_brute_force(
        subs in proptest::collection::vec(subscription_strategy(), 0..24),
        contents in proptest::collection::vec(content_strategy(), 0..10),
    ) {
        let mut index = SubscriptionIndex::new();
        for s in subs {
            index.insert(s);
        }
        assert_differential(&index, &contents);
    }

    /// Freeze-after-churn: interleaved inserts and swap-removes leave the
    /// mutable index with scrambled ordinals; freezing it must still be
    /// bit-identical to brute force.
    #[test]
    fn frozen_agrees_after_insert_remove_churn(
        subs in proptest::collection::vec(subscription_strategy(), 1..24),
        removes in proptest::collection::vec(proptest::bool::ANY, 1..24),
        late_subs in proptest::collection::vec(subscription_strategy(), 0..8),
        contents in proptest::collection::vec(content_strategy(), 0..8),
    ) {
        let mut index = SubscriptionIndex::new();
        let ids: Vec<_> = subs.into_iter().map(|s| index.insert(s)).collect();
        for (id, &remove) in ids.iter().zip(&removes) {
            if remove {
                index.remove(*id);
            }
        }
        for s in late_subs {
            index.insert(s);
        }
        assert_differential(&index, &contents);
    }

    /// One scratch reused across many (index, content) pairs never leaks
    /// state between matches (epoch discipline under rotation).
    #[test]
    fn scratch_rotation_is_stateless(
        subs_a in proptest::collection::vec(subscription_strategy(), 0..12),
        subs_b in proptest::collection::vec(subscription_strategy(), 0..12),
        contents in proptest::collection::vec(content_strategy(), 1..6),
    ) {
        let mut ia = SubscriptionIndex::new();
        for s in subs_a {
            ia.insert(s);
        }
        let mut ib = SubscriptionIndex::new();
        for s in subs_b {
            ib.insert(s);
        }
        let mut table = SymbolTable::new();
        let fa = FrozenIndex::freeze(&ia, &mut table);
        let fb = FrozenIndex::freeze(&ib, &mut table);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        for content in &contents {
            // Shared table: symbolize once, match both indexes.
            scratch.symbolize(&table, content);
            fa.matches_view_into(&mut scratch, &mut out);
            prop_assert_eq!(&out, &ia.matches(content));
            fb.matches_view_into(&mut scratch, &mut out);
            prop_assert_eq!(&out, &ib.matches(content));
        }
    }
}

#[test]
fn wildcard_and_empty_edges() {
    // Empty index, empty content.
    assert_differential(&SubscriptionIndex::new(), &[Content::new()]);
    // Wildcards only.
    let mut idx = SubscriptionIndex::new();
    idx.insert(Subscription::wildcard());
    idx.insert(Subscription::wildcard());
    assert_differential(
        &idx,
        &[
            Content::new(),
            Content::new().with("category", Value::str("sports")),
        ],
    );
    // Content whose every attribute and string is unknown to the table.
    let mut idx = SubscriptionIndex::new();
    idx.insert(Subscription::new(vec![Predicate::eq(
        "category",
        Value::str("sports"),
    )]));
    idx.insert(Subscription::wildcard());
    assert_differential(
        &idx,
        &[Content::new()
            .with("unknown", Value::str("never-interned"))
            .with("other", Value::tags(["nope"]))],
    );
}
