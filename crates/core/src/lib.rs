//! Subscription-aware content-distribution strategies for
//! publish/subscribe services — the primary contribution of Chen, LaPaugh
//! & Singh, *Content Distribution for Publish/Subscribe Services*
//! (Middleware 2003).
//!
//! A proxy server close to a group of subscribers caches published pages.
//! Placement decisions can be made **when a page matches subscriptions**
//! (push time) or **when a user requests it** (access time), and can be
//! valued by **subscription counts** or **observed accesses** — giving the
//! paper's taxonomy (Table 1), all of which this crate implements behind
//! one [`Strategy`] trait:
//!
//! | When \ How | access | subscription | both |
//! |---|---|---|---|
//! | access-time | [`AccessOnly`]`<GdStar>` (also LRU/GDS/LFU-DA) | | |
//! | push-time | | [`Sub`] | |
//! | both | | | [`SingleCache`] (SG1, SG2, SR), [`DualMethods`], [`DcFp`], [`DcAdaptive`] (DC-AP, DC-LAP) |
//!
//! [`StrategyKind`] is the config-friendly factory used by the simulator
//! and benchmarks.
//!
//! # Examples
//!
//! ```
//! use pscd_cache::PageRef;
//! use pscd_core::{Strategy, StrategyKind};
//! use pscd_types::{Bytes, PageId};
//!
//! // An SG2 proxy cache: GD* with f = subscriptions - accesses.
//! let mut proxy = StrategyKind::Sg2 { beta: 2.0 }.build(Bytes::from_kib(64));
//!
//! // A fresh page matching 12 subscriptions at this proxy is pushed…
//! let mut evicted = Vec::new();
//! let page = PageRef::new(PageId::new(0), Bytes::new(9_000), 2.0);
//! assert!(proxy.on_push(&page, 12, &mut evicted).is_stored());
//! // …and the first subscriber request is a local hit.
//! assert!(proxy.on_access(&page, 12, &mut evicted).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access_only;
mod dcap;
mod dcfp;
mod dm;
mod kind;
mod single;
mod strategy;
mod sub;
mod table;

pub use pscd_cache::Layout;

pub use access_only::AccessOnly;
pub use dcap::DcAdaptive;
pub use dcfp::DcFp;
pub use dm::DualMethods;
pub use kind::{StrategyImpl, StrategyKind};
pub use single::SingleCache;
pub use strategy::{AccessOutcome, PageRef, PushOutcome, Strategy, StrategyClass};
pub use sub::Sub;
