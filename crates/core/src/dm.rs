//! DM: single cache, dual replacement methods (§3.3).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pscd_cache::{AccessOutcome, Layout, PageRef};
use pscd_obs::{AdmitOrigin, EvictReason, NullObserver, ObsHandle, Observer};
use pscd_types::{Bytes, PageId};

use crate::table::EntryTable;
use crate::{PushOutcome, Strategy, StrategyClass};

/// Which of the two replacement modules is evaluating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Module {
    Access,
    Push,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: Bytes,
    access_value: f64,
    sub_value: f64,
    access_stamp: u64,
    sub_stamp: u64,
    freq: u32,
}

#[derive(Debug, Clone, Copy)]
struct HeapItem {
    value: f64,
    stamp: u64,
    page: PageId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .value
            .partial_cmp(&self.value)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.stamp.cmp(&self.stamp))
            .then_with(|| other.page.cmp(&self.page))
    }
}

/// The paper's *Dual-Methods* strategy: one shared cache, but **two
/// independent replacement algorithms** — GD\* handles access-time
/// replacement, SUB handles push-time placement. Every page is labeled
/// with two values (its GD\* value and its SUB value); each module sorts
/// and evicts by its own value only.
///
/// This exposes the interference the paper discusses: a page in hot use can
/// be evicted by a push-time placement if few subscriptions match it, and a
/// freshly pushed page with high predicted use can be evicted on a cache
/// miss because it has no access history yet — the motivation for the
/// Dual-Caches family.
///
/// Because every page carries two independently-refreshed values, the two
/// eviction orders are maintained as lazy-deletion heaps even in dense
/// layout. The heaps are preallocated to twice the page universe and
/// compact stale items in place when full, so DM is *strictly*
/// allocation-free in steady state (see DESIGN.md §12).
#[derive(Debug)]
pub struct DualMethods<O: Observer = NullObserver> {
    capacity: Bytes,
    used: Bytes,
    entries: EntryTable<Entry>,
    access_heap: BinaryHeap<HeapItem>,
    sub_heap: BinaryHeap<HeapItem>,
    inflation: f64,
    beta: f64,
    next_stamp: u64,
    obs: ObsHandle<O>,
}

impl DualMethods {
    /// Creates a DM proxy cache.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn new(capacity: Bytes, beta: f64) -> Self {
        Self::with_observer(capacity, beta, ObsHandle::disabled())
    }
}

impl<O: Observer> DualMethods<O> {
    /// Creates a DM proxy cache reporting cache decisions to `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn with_observer(capacity: Bytes, beta: f64, obs: ObsHandle<O>) -> Self {
        Self::with_layout(capacity, beta, Layout::Sparse, obs)
    }

    /// Creates a DM proxy cache with an explicit state [`Layout`].
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn with_layout(capacity: Bytes, beta: f64, layout: Layout, obs: ObsHandle<O>) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        // Dense layout bounds live entries by the page universe, so heaps
        // preallocated to twice that never grow: when one fills, stale
        // lazy-deletion items are compacted in place (see `push_heap`),
        // leaving at least half the slots free. Strictly alloc-free in
        // steady state, compaction amortized O(1) per push.
        let heap_capacity = match layout {
            Layout::Dense { page_count } => page_count.saturating_mul(2).max(16),
            Layout::Sparse => 0,
        };
        Self {
            capacity,
            used: Bytes::ZERO,
            entries: EntryTable::with_layout(layout),
            access_heap: BinaryHeap::with_capacity(heap_capacity),
            sub_heap: BinaryHeap::with_capacity(heap_capacity),
            inflation: 0.0,
            beta,
            next_stamp: 0,
            obs,
        }
    }

    /// GD\* weight `(f·c/s)^(1/β)`.
    fn gd_weight(&self, freq: u32, page: &PageRef) -> f64 {
        (freq as f64 * page.cost / page.size.as_f64())
            .max(0.0)
            .powf(1.0 / self.beta)
    }

    /// SUB value `f_S·c/s`.
    fn sub_value(page: &PageRef, subs: u32) -> f64 {
        subs as f64 * page.cost / page.size.as_f64()
    }

    fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    fn free(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    /// Total size of pages whose value *under the given module* is below `v`.
    fn candidate_size_below(&self, module: Module, v: f64) -> Bytes {
        self.entries
            .iter()
            .filter(|(_, e)| match module {
                Module::Access => e.access_value < v,
                Module::Push => e.sub_value < v,
            })
            .map(|(_, e)| e.size)
            .sum()
    }

    /// Pushes a lazy-deletion item under `module`'s heap, compacting stale
    /// items in place first whenever the heap is at capacity. Live items
    /// are bounded by resident entries, so a preallocated heap (dense
    /// layout) never reallocates — retire of the "amortized allocations"
    /// carve-out noted in DESIGN.md §12.
    fn push_heap(&mut self, module: Module, item: HeapItem) {
        let heap = match module {
            Module::Access => &mut self.access_heap,
            Module::Push => &mut self.sub_heap,
        };
        if heap.len() == heap.capacity() {
            let entries = &self.entries;
            heap.retain(|it| {
                entries.get(it.page).is_some_and(|e| match module {
                    Module::Access => e.access_stamp == it.stamp,
                    Module::Push => e.sub_stamp == it.stamp,
                })
            });
        }
        match module {
            Module::Access => self.access_heap.push(item),
            Module::Push => self.sub_heap.push(item),
        }
    }

    /// Pops the minimum-valued live page under `module`'s ordering.
    fn pop_min(&mut self, module: Module) -> Option<(PageId, Entry)> {
        loop {
            let item = match module {
                Module::Access => self.access_heap.pop()?,
                Module::Push => self.sub_heap.pop()?,
            };
            let live = self.entries.get(item.page).is_some_and(|e| match module {
                Module::Access => e.access_stamp == item.stamp,
                Module::Push => e.sub_stamp == item.stamp,
            });
            if live {
                let entry = self.entries.remove(item.page).expect("live entry");
                self.used -= entry.size;
                return Some((item.page, entry));
            }
        }
    }

    /// Serializes the mutable state for a snapshot: inflation, the stamp
    /// counter, and every resident entry in live-list order. Live-list
    /// order is history-determined, so two caches that processed the same
    /// operation stream encode identically. Stale lazy-deletion heap
    /// items are deliberately not encoded: stamps give each live entry a
    /// unique key, so heaps rebuilt from live entries pop in exactly the
    /// same order the originals would (stale items are skimmed either way).
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        use pscd_cache::snapshot::{put_f64, put_u32, put_u64};
        put_f64(out, self.inflation);
        put_u64(out, self.next_stamp);
        put_u32(out, self.entries.len() as u32);
        for (page, e) in self.entries.iter() {
            put_u32(out, page.index());
            put_u64(out, e.size.as_u64());
            put_f64(out, e.access_value);
            put_f64(out, e.sub_value);
            put_u64(out, e.access_stamp);
            put_u64(out, e.sub_stamp);
            put_u32(out, e.freq);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        &mut self,
        r: &mut pscd_cache::SnapshotReader<'_>,
    ) -> Result<(), pscd_cache::SnapshotError> {
        use pscd_cache::SnapshotError;
        let inflation = r.read_f64()?;
        let next_stamp = r.read_u64()?;
        let n = r.read_u32()? as usize;
        if n > r.remaining() / 48 {
            return Err(SnapshotError::Corrupt("DM entry count overruns buffer"));
        }
        self.entries.clear();
        self.access_heap.clear();
        self.sub_heap.clear();
        self.used = Bytes::ZERO;
        for _ in 0..n {
            let page = PageId::new(r.read_u32()?);
            let entry = Entry {
                size: Bytes::new(r.read_u64()?),
                access_value: r.read_f64()?,
                sub_value: r.read_f64()?,
                access_stamp: r.read_u64()?,
                sub_stamp: r.read_u64()?,
                freq: r.read_u32()?,
            };
            self.entries.insert(page, entry);
            self.used += entry.size;
            self.push_heap(
                Module::Access,
                HeapItem {
                    value: entry.access_value,
                    stamp: entry.access_stamp,
                    page,
                },
            );
            self.push_heap(
                Module::Push,
                HeapItem {
                    value: entry.sub_value,
                    stamp: entry.sub_stamp,
                    page,
                },
            );
        }
        self.inflation = inflation;
        self.next_stamp = next_stamp;
        Ok(())
    }

    fn insert(&mut self, page: &PageRef, access_value: f64, sub_value: f64, freq: u32) {
        let access_stamp = self.stamp();
        let sub_stamp = self.stamp();
        self.entries.insert(
            page.page,
            Entry {
                size: page.size,
                access_value,
                sub_value,
                access_stamp,
                sub_stamp,
                freq,
            },
        );
        self.used += page.size;
        self.push_heap(
            Module::Access,
            HeapItem {
                value: access_value,
                stamp: access_stamp,
                page: page.page,
            },
        );
        self.push_heap(
            Module::Push,
            HeapItem {
                value: sub_value,
                stamp: sub_stamp,
                page: page.page,
            },
        );
    }
}

impl<O: Observer> Strategy for DualMethods<O> {
    fn name(&self) -> &'static str {
        "DM"
    }

    fn class(&self) -> StrategyClass {
        StrategyClass::Combined
    }

    fn on_push(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome {
        evicted.clear();
        if self.entries.contains(page.page) {
            return PushOutcome::Stored;
        }
        if !self.would_store(page, subs) {
            return PushOutcome::Declined;
        }
        let v = Self::sub_value(page, subs);
        while self.free() < page.size {
            let (victim, entry) = self
                .pop_min(Module::Push)
                .expect("candidate check guarantees room");
            if O::ENABLED {
                self.obs
                    .evict(victim, entry.size, entry.sub_value, EvictReason::Push);
            }
            evicted.push(victim);
        }
        // A pushed page has no access history: its GD* value is just L
        // (f = 0), so the access module treats it as cold until requested.
        let (l, zero_weight) = (self.inflation, self.gd_weight(0, page));
        self.insert(page, l + zero_weight, v, 0);
        if O::ENABLED {
            self.obs.admit(page.page, page.size, v, AdmitOrigin::Push);
        }
        PushOutcome::Stored
    }

    fn would_store(&self, page: &PageRef, subs: u32) -> bool {
        if self.entries.contains(page.page) {
            return true;
        }
        if page.size > self.capacity {
            return false;
        }
        let v = Self::sub_value(page, subs);
        self.free() + self.candidate_size_below(Module::Push, v) >= page.size
    }

    fn on_access(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> AccessOutcome {
        evicted.clear();
        if let Some(entry) = self.entries.get_mut(page.page) {
            entry.freq += 1;
            let freq = entry.freq;
            let stamp = {
                let s = self.next_stamp;
                self.next_stamp += 1;
                s
            };
            let v = self.inflation + self.gd_weight(freq, page);
            let entry = self.entries.get_mut(page.page).expect("present");
            entry.access_value = v;
            entry.access_stamp = stamp;
            self.push_heap(
                Module::Access,
                HeapItem {
                    value: v,
                    stamp,
                    page: page.page,
                },
            );
            return AccessOutcome::Hit;
        }
        // GD* replacement on miss: always admit (classic), evicting by
        // access value; inflation rises to the last victim's access value.
        if page.size > self.capacity {
            return AccessOutcome::MissBypassed;
        }
        while self.free() < page.size {
            let (victim, entry) = self
                .pop_min(Module::Access)
                .expect("cache not empty while free < size <= capacity");
            self.inflation = entry.access_value;
            if O::ENABLED {
                self.obs
                    .evict(victim, entry.size, entry.access_value, EvictReason::Access);
            }
            evicted.push(victim);
        }
        let v = self.inflation + self.gd_weight(1, page);
        let sv = Self::sub_value(page, subs);
        self.insert(page, v, sv, 1);
        if O::ENABLED {
            self.obs.admit(page.page, page.size, v, AdmitOrigin::Access);
        }
        AccessOutcome::MissAdmitted
    }

    fn contains(&self, page: PageId) -> bool {
        self.entries.contains(page)
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        match self.entries.remove(page) {
            Some(entry) => {
                self.used -= entry.size;
                if O::ENABLED {
                    self.obs.evict(
                        page,
                        entry.size,
                        entry.access_value,
                        EvictReason::Invalidate,
                    );
                }
                true
            }
            None => false,
        }
    }

    fn capacity(&self) -> Bytes {
        self.capacity
    }

    fn used(&self) -> Bytes {
        self.used
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u32, size: u64, cost: f64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), cost)
    }

    #[test]
    fn push_and_access_modules_use_their_own_values() {
        let mut ev = Vec::new();
        let mut dm = DualMethods::new(Bytes::new(20), 1.0);
        // Page 1: hot in use (2 accesses), but zero subscriptions.
        let p1 = page(1, 10, 10.0);
        dm.on_access(&p1, 0, &mut ev);
        dm.on_access(&p1, 0, &mut ev);
        // Page 2: pushed with low subscription value.
        assert!(dm.on_push(&page(2, 10, 10.0), 1, &mut ev).is_stored());
        // Push module sees p1's sub value (0) as weakest: a push evicts the
        // hot page — exactly the DM interference the paper describes.
        let out = dm.on_push(&page(3, 10, 10.0), 2, &mut ev);
        assert_eq!(out, PushOutcome::Stored);
        assert_eq!(ev, vec![PageId::new(1)]);
    }

    #[test]
    fn access_module_evicts_unaccessed_pushed_pages_first() {
        let mut ev = Vec::new();
        let mut dm = DualMethods::new(Bytes::new(20), 1.0);
        // Highly subscribed pushed page (no accesses yet).
        dm.on_push(&page(1, 10, 10.0), 100, &mut ev);
        // Accessed page.
        dm.on_access(&page(2, 10, 10.0), 0, &mut ev);
        // Miss forces access-time replacement: victim is the pushed page
        // (access value = L + 0) despite its high subscription value.
        let out = dm.on_access(&page(3, 10, 10.0), 0, &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev, vec![PageId::new(1)]);
    }

    #[test]
    fn push_declines_when_candidates_insufficient() {
        let mut ev = Vec::new();
        let mut dm = DualMethods::new(Bytes::new(20), 1.0);
        dm.on_push(&page(1, 10, 1.0), 10, &mut ev);
        dm.on_push(&page(2, 10, 1.0), 10, &mut ev);
        assert_eq!(
            dm.on_push(&page(3, 10, 1.0), 5, &mut ev),
            PushOutcome::Declined
        );
        assert!(!dm.would_store(&page(3, 10, 1.0), 5));
        assert!(dm.would_store(&page(4, 10, 1.0), 50));
        // Re-push of a cached page is a trivial success.
        assert_eq!(
            dm.on_push(&page(1, 10, 1.0), 1, &mut ev),
            PushOutcome::Stored
        );
        assert!(ev.is_empty());
    }

    #[test]
    fn hits_update_access_value() {
        let mut ev = Vec::new();
        let mut dm = DualMethods::new(Bytes::new(20), 1.0);
        let p = page(1, 10, 10.0);
        dm.on_push(&p, 1, &mut ev);
        assert!(dm.on_access(&p, 1, &mut ev).is_hit());
        assert!(dm.on_access(&p, 1, &mut ev).is_hit());
        assert_eq!(dm.len(), 1);
        assert_eq!(dm.used(), Bytes::new(10));
        // After two accesses, p survives an access-time replacement against
        // a single-access newcomer even though another page is present.
        dm.on_access(&page(2, 10, 1.0), 0, &mut ev);
        let out = dm.on_access(&page(3, 10, 5.0), 0, &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev, vec![PageId::new(2)]);
        assert!(dm.contains(p.page));
    }

    #[test]
    fn oversized_pages_bypassed() {
        let mut ev = Vec::new();
        let mut dm = DualMethods::new(Bytes::new(10), 2.0);
        assert_eq!(
            dm.on_access(&page(1, 11, 1.0), 0, &mut ev),
            AccessOutcome::MissBypassed
        );
        assert_eq!(
            dm.on_push(&page(2, 11, 1.0), 5, &mut ev),
            PushOutcome::Declined
        );
        assert!(dm.len() == 0);
        assert_eq!(dm.capacity(), Bytes::new(10));
        assert_eq!(dm.name(), "DM");
        assert_eq!(dm.class(), StrategyClass::Combined);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn rejects_bad_beta() {
        let _ = DualMethods::new(Bytes::new(10), -1.0);
    }

    #[test]
    fn accounting_invariants_hold_under_churn() {
        let mut ev = Vec::new();
        let mut dm = DualMethods::new(Bytes::new(300), 2.0);
        for i in 0..300u32 {
            let id = i % 41;
            let p = page(id, 10 + (id as u64 % 7) * 17, 1.0 + (id % 3) as f64);
            if i % 2 == 0 {
                let _ = dm.on_push(&p, id % 9, &mut ev);
            } else {
                let _ = dm.on_access(&p, id % 9, &mut ev);
            }
            assert!(dm.used() <= dm.capacity(), "over capacity at step {i}");
            // Byte accounting equals the sum of resident entry sizes.
            let sum: Bytes = dm.entries.iter().map(|(_, e)| e.size).sum();
            assert_eq!(sum, dm.used(), "accounting drift at step {i}");
        }
        assert!(dm.len() > 0);
    }

    #[test]
    fn dense_layout_matches_sparse() {
        let mut ev_s = Vec::new();
        let mut ev_d = Vec::new();
        let mut sparse = DualMethods::new(Bytes::new(60), 2.0);
        let mut dense = DualMethods::with_layout(
            Bytes::new(60),
            2.0,
            Layout::Dense { page_count: 30 },
            ObsHandle::disabled(),
        );
        let mut x = 0xabcd_ef01u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..3_000u32 {
            let p = page((rng() % 30) as u32, rng() % 15 + 1, (rng() % 5 + 1) as f64);
            let subs = (rng() % 20) as u32;
            match rng() % 4 {
                0 => assert_eq!(
                    sparse.on_push(&p, subs, &mut ev_s),
                    dense.on_push(&p, subs, &mut ev_d),
                    "push diverged at step {i}"
                ),
                1 => assert_eq!(sparse.invalidate(p.page), dense.invalidate(p.page)),
                _ => assert_eq!(
                    sparse.on_access(&p, subs, &mut ev_s),
                    dense.on_access(&p, subs, &mut ev_d),
                    "access diverged at step {i}"
                ),
            }
            assert_eq!(ev_s, ev_d, "evictions diverged at step {i}");
            assert_eq!(sparse.used(), dense.used());
            assert_eq!(sparse.len(), dense.len());
        }
    }
}
