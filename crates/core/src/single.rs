//! Single-cache, single-replacement combined strategies: SG1, SG2, SR (§3.3).

use pscd_cache::{AccessOutcome, GreedyDualEngine, Layout, PageRef, PageTable};
use pscd_obs::{NullObserver, ObsHandle, Observer};
use pscd_types::{Bytes, PageId};

use crate::{PushOutcome, Strategy, StrategyClass};

/// The evaluation function of a [`SingleCache`] strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Model {
    /// SG1: GD\* with `f(p) = s + a` (eq. 3).
    Sg1 { beta: f64 },
    /// SG2: GD\* with `f(p) = s − a` (eq. 4, clamped at 0).
    Sg2 { beta: f64 },
    /// SR: `V(p) = (s − a) · c(p)/s(p)` (eq. 5, clamped at 0; no GD\*
    /// framework — pure future-frequency prediction).
    Sr,
}

/// The paper's single-cache/single-method combined strategies. One cache,
/// one evaluation function applied at both push time and access time:
///
/// * **SG1** (*Subscription-GD\*-1*): adds subscription and access counts,
///   `f(p) = s + a`, inside the GD\* value (eq. 1 + eq. 3).
/// * **SG2** (*Subscription-GD\*-2*): uses the *difference* `f(p) = s − a`
///   — if every subscriber reads a matching page once, that difference is
///   exactly the page's future reference count (eq. 4).
/// * **SR** (*subscription-request*): drops the GD\* recency machinery and
///   values pages purely by predicted future frequency,
///   `V(p) = (s − a)·c/s` (eq. 5).
///
/// Placement is value-gated at both opportunities: a pushed page (or a
/// fetched-on-miss page) enters the cache only if enough strictly-less-
/// valuable residents can be evicted for it (§3.3, "Single Cache and Single
/// Replacement Method").
///
/// Unlike GD\*'s In-Cache LFU reference counts, the access count `a` is
/// cumulative across evictions: `s − a` estimates *remaining* future
/// references, which must not reset when a page is evicted and later
/// re-fetched.
///
/// # Examples
///
/// ```
/// use pscd_core::{SingleCache, Strategy};
/// use pscd_cache::PageRef;
/// use pscd_types::{Bytes, PageId};
///
/// let mut sg2 = SingleCache::sg2(Bytes::from_kib(4), 2.0);
/// let mut evicted = Vec::new();
/// let page = PageRef::new(PageId::new(0), Bytes::new(256), 1.0);
/// assert!(sg2.on_push(&page, 5, &mut evicted).is_stored());
/// assert!(sg2.on_access(&page, 5, &mut evicted).is_hit());
/// ```
#[derive(Debug)]
pub struct SingleCache<O: Observer = NullObserver> {
    engine: GreedyDualEngine<O>,
    /// Cumulative access counts per page (not reset on eviction).
    accesses: PageTable<u32>,
    model: Model,
    name: &'static str,
}

impl SingleCache {
    /// Creates an SG1 cache (`f = s + a` in the GD\* value).
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn sg1(capacity: Bytes, beta: f64) -> Self {
        Self::sg1_observed(capacity, beta, ObsHandle::disabled())
    }

    /// Creates an SG2 cache (`f = s − a` in the GD\* value).
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn sg2(capacity: Bytes, beta: f64) -> Self {
        Self::sg2_observed(capacity, beta, ObsHandle::disabled())
    }

    /// Creates an SR cache (`V = (s − a)·c/s`, no GD\* framework).
    pub fn sr(capacity: Bytes) -> Self {
        Self::sr_observed(capacity, ObsHandle::disabled())
    }
}

impl<O: Observer> SingleCache<O> {
    /// [`sg1`](SingleCache::sg1) reporting cache decisions to `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn sg1_observed(capacity: Bytes, beta: f64, obs: ObsHandle<O>) -> Self {
        Self::sg1_with_layout(capacity, beta, Layout::Sparse, obs)
    }

    /// [`sg2`](SingleCache::sg2) reporting cache decisions to `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn sg2_observed(capacity: Bytes, beta: f64, obs: ObsHandle<O>) -> Self {
        Self::sg2_with_layout(capacity, beta, Layout::Sparse, obs)
    }

    /// [`sr`](SingleCache::sr) reporting cache decisions to `obs`.
    pub fn sr_observed(capacity: Bytes, obs: ObsHandle<O>) -> Self {
        Self::sr_with_layout(capacity, Layout::Sparse, obs)
    }

    /// [`sg1`](SingleCache::sg1) with an explicit state [`Layout`].
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn sg1_with_layout(capacity: Bytes, beta: f64, layout: Layout, obs: ObsHandle<O>) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        Self::with_model(capacity, layout, obs, Model::Sg1 { beta }, "SG1")
    }

    /// [`sg2`](SingleCache::sg2) with an explicit state [`Layout`].
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn sg2_with_layout(capacity: Bytes, beta: f64, layout: Layout, obs: ObsHandle<O>) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        Self::with_model(capacity, layout, obs, Model::Sg2 { beta }, "SG2")
    }

    /// [`sr`](SingleCache::sr) with an explicit state [`Layout`].
    pub fn sr_with_layout(capacity: Bytes, layout: Layout, obs: ObsHandle<O>) -> Self {
        Self::with_model(capacity, layout, obs, Model::Sr, "SR")
    }

    fn with_model(
        capacity: Bytes,
        layout: Layout,
        obs: ObsHandle<O>,
        model: Model,
        name: &'static str,
    ) -> Self {
        Self {
            engine: GreedyDualEngine::with_layout(capacity, layout, obs),
            accesses: PageTable::with_layout(layout),
            model,
            name,
        }
    }

    /// The cumulative access count recorded for a page.
    pub fn access_count(&self, page: PageId) -> u32 {
        self.accesses.get(page)
    }

    /// Serializes the mutable state — the engine plus the cumulative
    /// access-count table (which, unlike the engine's In-Cache LFU
    /// counts, covers evicted pages too).
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        use pscd_cache::snapshot::put_u32;
        self.engine.encode_state(out);
        let counts = self.accesses.entries();
        put_u32(out, counts.len() as u32);
        for (page, a) in counts {
            put_u32(out, page.index());
            put_u32(out, a);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        &mut self,
        r: &mut pscd_cache::SnapshotReader<'_>,
    ) -> Result<(), pscd_cache::SnapshotError> {
        use pscd_cache::SnapshotError;
        self.engine.decode_state(r)?;
        let n = r.read_u32()? as usize;
        if n > r.remaining() / 8 {
            return Err(SnapshotError::Corrupt("access-count table overruns buffer"));
        }
        self.accesses.clear();
        for _ in 0..n {
            let page = PageId::new(r.read_u32()?);
            let a = r.read_u32()?;
            self.accesses.set(page, a);
        }
        Ok(())
    }

    /// The strategy's page value given subscription count `subs`, access
    /// count `a` and inflation `l`.
    fn value(&self, page: &PageRef, subs: u32, a: u32, l: f64) -> f64 {
        let cs = page.cost / page.size.as_f64();
        match self.model {
            Model::Sg1 { beta } => {
                let f = subs as f64 + a as f64;
                l + (f * cs).max(0.0).powf(1.0 / beta)
            }
            Model::Sg2 { beta } => {
                let f = (subs as f64 - a as f64).max(0.0);
                l + (f * cs).powf(1.0 / beta)
            }
            Model::Sr => (subs as f64 - a as f64).max(0.0) * cs,
        }
    }
}

impl<O: Observer> Strategy for SingleCache<O> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn class(&self) -> StrategyClass {
        StrategyClass::Combined
    }

    fn on_push(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome {
        let a = self.access_count(page.page);
        let v = self.value(page, subs, a, self.engine.inflation());
        if self.engine.push_valued(page, v, evicted) {
            PushOutcome::Stored
        } else {
            PushOutcome::Declined
        }
    }

    fn would_store(&self, page: &PageRef, subs: u32) -> bool {
        let store = self.engine.store();
        if store.contains(page.page) {
            return true;
        }
        if page.size > store.capacity() {
            return false;
        }
        let a = self.access_count(page.page);
        let v = self.value(page, subs, a, self.engine.inflation());
        store.free() + store.candidate_size_below(v) >= page.size
    }

    fn on_access(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> AccessOutcome {
        let a = self.accesses.get(page.page) + 1;
        self.accesses.set(page.page, a);
        // The closure ignores the engine's in-cache count: this family
        // tracks cumulative accesses itself (see type docs).
        let model = self.model;
        let name_value = |l: f64| {
            let cs = page.cost / page.size.as_f64();
            match model {
                Model::Sg1 { beta } => {
                    l + ((subs as f64 + a as f64) * cs).max(0.0).powf(1.0 / beta)
                }
                Model::Sg2 { beta } => {
                    l + (((subs as f64 - a as f64).max(0.0)) * cs).powf(1.0 / beta)
                }
                Model::Sr => (subs as f64 - a as f64).max(0.0) * cs,
            }
        };
        self.engine
            .access_gated(page, |_, l| name_value(l), evicted)
    }

    fn contains(&self, page: PageId) -> bool {
        self.engine.store().contains(page)
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.engine.evict(page)
    }

    fn capacity(&self) -> Bytes {
        self.engine.store().capacity()
    }

    fn used(&self) -> Bytes {
        self.engine.store().used()
    }

    fn len(&self) -> usize {
        self.engine.store().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u32, size: u64, cost: f64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), cost)
    }

    #[test]
    fn names_and_class() {
        assert_eq!(SingleCache::sg1(Bytes::new(10), 2.0).name(), "SG1");
        assert_eq!(SingleCache::sg2(Bytes::new(10), 2.0).name(), "SG2");
        assert_eq!(SingleCache::sr(Bytes::new(10)).name(), "SR");
        assert_eq!(
            SingleCache::sr(Bytes::new(10)).class(),
            StrategyClass::Combined
        );
    }

    #[test]
    fn push_then_access_hits() {
        let mut ev = Vec::new();
        for mut s in [
            SingleCache::sg1(Bytes::new(100), 2.0),
            SingleCache::sg2(Bytes::new(100), 2.0),
            SingleCache::sr(Bytes::new(100)),
        ] {
            let p = page(1, 10, 1.0);
            assert!(s.on_push(&p, 4, &mut ev).is_stored());
            assert!(s.on_access(&p, 4, &mut ev).is_hit());
            assert_eq!(s.access_count(p.page), 1);
        }
    }

    #[test]
    fn sg2_value_decays_with_accesses() {
        let mut ev = Vec::new();
        let mut sg2 = SingleCache::sg2(Bytes::new(30), 1.0);
        let p = page(1, 10, 10.0);
        sg2.on_push(&p, 2, &mut ev); // f = 2 - 0 = 2 -> value 2*1 = 2
        let v0 = sg2.engineer_value(p.page);
        sg2.on_access(&p, 2, &mut ev); // a = 1, f = 1
        let v1 = sg2.engineer_value(p.page);
        sg2.on_access(&p, 2, &mut ev); // a = 2, f = 0
        let v2 = sg2.engineer_value(p.page);
        assert!(v0 > v1 && v1 > v2, "{v0} > {v1} > {v2} expected");
    }

    #[test]
    fn sg1_value_grows_with_accesses() {
        let mut ev = Vec::new();
        let mut sg1 = SingleCache::sg1(Bytes::new(30), 1.0);
        let p = page(1, 10, 10.0);
        sg1.on_push(&p, 2, &mut ev);
        let v0 = sg1.engineer_value(p.page);
        sg1.on_access(&p, 2, &mut ev);
        let v1 = sg1.engineer_value(p.page);
        assert!(v1 > v0);
    }

    #[test]
    fn access_counts_survive_eviction() {
        let mut ev = Vec::new();
        let mut sr = SingleCache::sr(Bytes::new(10));
        let p = page(1, 10, 1.0);
        sr.on_push(&p, 3, &mut ev);
        sr.on_access(&p, 3, &mut ev); // a = 1
                                      // Displace it with a much more valuable page.
        assert!(sr.on_push(&page(2, 10, 1.0), 100, &mut ev).is_stored());
        assert!(!sr.contains(p.page));
        // The count is still there: a = 1 persists.
        assert_eq!(sr.access_count(p.page), 1);
        sr.on_access(&p, 3, &mut ev); // a = 2, f = 1, value small -> gated out
        assert_eq!(sr.access_count(p.page), 2);
    }

    #[test]
    fn sr_exhausted_pages_are_not_admitted() {
        let mut ev = Vec::new();
        let mut sr = SingleCache::sr(Bytes::new(20));
        let hot = page(1, 10, 1.0);
        sr.on_push(&hot, 1, &mut ev);
        // One subscriber, one read: future refs 0 after this access.
        assert!(sr.on_access(&hot, 1, &mut ev).is_hit());
        // Now fill with a valuable page, then re-request the dead page:
        sr.on_push(&page(2, 10, 1.0), 50, &mut ev);
        assert!(sr.on_push(&page(3, 10, 1.0), 50, &mut ev).is_stored()); // evicts hot (v=0)
        assert!(!sr.contains(hot.page));
        // Re-access: s - a = 1 - 2 -> clamped 0; value 0; cache full with
        // positive-valued pages -> bypassed.
        assert_eq!(sr.on_access(&hot, 1, &mut ev), AccessOutcome::MissBypassed);
    }

    #[test]
    fn gated_miss_admission_requires_value() {
        let mut ev = Vec::new();
        let mut sg2 = SingleCache::sg2(Bytes::new(20), 1.0);
        sg2.on_push(&page(1, 10, 1.0), 100, &mut ev);
        sg2.on_push(&page(2, 10, 1.0), 100, &mut ev);
        // Page with zero subscriptions missing: f = 0 - 1 -> 0 -> low value.
        assert_eq!(
            sg2.on_access(&page(3, 10, 1.0), 0, &mut ev),
            AccessOutcome::MissBypassed
        );
        // Page with many subscriptions missing: admitted over weaker... none
        // weaker here (both 100-sub pages), so still bypassed.
        assert_eq!(
            sg2.on_access(&page(4, 10, 1.0), 50, &mut ev),
            AccessOutcome::MissBypassed
        );
        // Against low-value residents it is admitted.
        let mut sg2 = SingleCache::sg2(Bytes::new(20), 1.0);
        sg2.on_push(&page(1, 10, 1.0), 1, &mut ev);
        sg2.on_push(&page(2, 10, 1.0), 1, &mut ev);
        assert_eq!(
            sg2.on_access(&page(4, 10, 1.0), 50, &mut ev),
            AccessOutcome::MissAdmitted
        );
        assert!(!ev.is_empty());
    }

    #[test]
    fn would_store_matches_on_push() {
        let mut ev = Vec::new();
        let mut sg1 = SingleCache::sg1(Bytes::new(20), 2.0);
        let cases = [
            (page(1, 10, 1.0), 10u32),
            (page(2, 10, 1.0), 5),
            (page(3, 10, 1.0), 1),
            (page(4, 15, 1.0), 30),
            (page(5, 25, 1.0), 99),
        ];
        for (p, subs) in cases {
            assert_eq!(
                sg1.would_store(&p, subs),
                sg1.on_push(&p, subs, &mut ev).is_stored(),
                "page {:?}",
                p.page
            );
        }
    }

    #[test]
    fn dense_layout_matches_sparse() {
        let mut ev_s = Vec::new();
        let mut ev_d = Vec::new();
        let dense = Layout::Dense { page_count: 24 };
        let disabled = ObsHandle::disabled;
        let mut pairs = [
            (
                SingleCache::sg1(Bytes::new(40), 2.0),
                SingleCache::sg1_with_layout(Bytes::new(40), 2.0, dense, disabled()),
            ),
            (
                SingleCache::sg2(Bytes::new(40), 2.0),
                SingleCache::sg2_with_layout(Bytes::new(40), 2.0, dense, disabled()),
            ),
            (
                SingleCache::sr(Bytes::new(40)),
                SingleCache::sr_with_layout(Bytes::new(40), dense, disabled()),
            ),
        ];
        let mut x = 0x9e37_79b9u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2_000 {
            let p = page((rng() % 24) as u32, rng() % 15 + 1, (rng() % 5 + 1) as f64);
            let subs = (rng() % 20) as u32;
            let push = rng() % 2 == 0;
            for (sparse, dense) in &mut pairs {
                if push {
                    assert_eq!(
                        sparse.on_push(&p, subs, &mut ev_s),
                        dense.on_push(&p, subs, &mut ev_d),
                        "{}",
                        sparse.name()
                    );
                } else {
                    assert_eq!(
                        sparse.on_access(&p, subs, &mut ev_s),
                        dense.on_access(&p, subs, &mut ev_d),
                        "{}",
                        sparse.name()
                    );
                }
                assert_eq!(ev_s, ev_d);
                assert_eq!(sparse.used(), dense.used());
            }
        }
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn rejects_bad_beta() {
        let _ = SingleCache::sg1(Bytes::new(10), f64::NAN);
    }

    impl SingleCache {
        /// Test helper: the stored value of a cached page.
        fn engineer_value(&self, page: PageId) -> f64 {
            self.engine.store().value(page).expect("page cached")
        }
    }
}
