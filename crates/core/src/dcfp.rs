//! DC-FP: dual caches with fixed partition (§3.3).

use pscd_cache::{AccessOutcome, GreedyDualEngine, Layout, PageRef};
use pscd_obs::{NullObserver, ObsHandle, Observer, RelabelDirection};
use pscd_types::{Bytes, PageId};

use crate::{PushOutcome, Strategy, StrategyClass};

/// The paper's *Dual-Caches with Fixed Partition*: the proxy's storage is
/// split into a **Push-Cache (PC)** managed by SUB and an **Access-Cache
/// (AC)** managed by GD\*, each running only on its own portion.
///
/// * Pushes place pages into PC under SUB's value (eq. 2).
/// * A request first checks PC: a PC hit **moves** the page into AC (it is
///   henceforth evaluated by its access pattern), which may trigger a GD\*
///   replacement in AC.
/// * AC hits and misses run classic GD\*.
///
/// The paper's configuration splits 50%/50% ([`DcFp::new`]); an arbitrary
/// split is available through [`DcFp::with_fraction`].
#[derive(Debug)]
pub struct DcFp<O: Observer = NullObserver> {
    pc: GreedyDualEngine<O>,
    ac: GreedyDualEngine<O>,
    beta: f64,
    obs: ObsHandle<O>,
}

impl DcFp {
    /// Creates a DC-FP cache with the paper's 50/50 partition.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn new(capacity: Bytes, beta: f64) -> Self {
        Self::with_fraction(capacity, beta, 0.5)
    }

    /// Creates a DC-FP cache devoting `pc_fraction` of the capacity to the
    /// push cache.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite and
    /// `0 < pc_fraction < 1`.
    pub fn with_fraction(capacity: Bytes, beta: f64, pc_fraction: f64) -> Self {
        Self::with_fraction_observed(capacity, beta, pc_fraction, ObsHandle::disabled())
    }
}

impl<O: Observer> DcFp<O> {
    /// Creates a DC-FP cache with the paper's 50/50 partition, reporting
    /// cache decisions to `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn with_observer(capacity: Bytes, beta: f64, obs: ObsHandle<O>) -> Self {
        Self::with_fraction_observed(capacity, beta, 0.5, obs)
    }

    /// [`with_fraction`](DcFp::with_fraction) reporting cache decisions to
    /// `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite and
    /// `0 < pc_fraction < 1`.
    pub fn with_fraction_observed(
        capacity: Bytes,
        beta: f64,
        pc_fraction: f64,
        obs: ObsHandle<O>,
    ) -> Self {
        Self::with_fraction_layout(capacity, beta, pc_fraction, Layout::Sparse, obs)
    }

    /// [`with_fraction`](DcFp::with_fraction) with an explicit state
    /// [`Layout`].
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite and
    /// `0 < pc_fraction < 1`.
    pub fn with_fraction_layout(
        capacity: Bytes,
        beta: f64,
        pc_fraction: f64,
        layout: Layout,
        obs: ObsHandle<O>,
    ) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        assert!(
            pc_fraction > 0.0 && pc_fraction < 1.0,
            "pc_fraction must be in (0, 1)"
        );
        let pc_capacity = capacity.scaled(pc_fraction);
        let ac_capacity = capacity - pc_capacity;
        Self {
            pc: GreedyDualEngine::with_layout(pc_capacity, layout, obs.clone()),
            ac: GreedyDualEngine::with_layout(ac_capacity, layout, obs.clone()),
            beta,
            obs,
        }
    }

    /// The push-cache portion's capacity.
    pub fn pc_capacity(&self) -> Bytes {
        self.pc.store().capacity()
    }

    /// The access-cache portion's capacity.
    pub fn ac_capacity(&self) -> Bytes {
        self.ac.store().capacity()
    }

    /// Serializes the mutable state: the PC engine followed by the AC
    /// engine (each partition is an independent [`GreedyDualEngine`]).
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        self.pc.encode_state(out);
        self.ac.encode_state(out);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        &mut self,
        r: &mut pscd_cache::SnapshotReader<'_>,
    ) -> Result<(), pscd_cache::SnapshotError> {
        self.pc.decode_state(r)?;
        self.ac.decode_state(r)
    }

    fn sub_value(page: &PageRef, subs: u32) -> f64 {
        subs as f64 * page.cost / page.size.as_f64()
    }

    fn gd_value(beta: f64, page: &PageRef) -> impl Fn(u32, f64) -> f64 + '_ {
        move |f, l| {
            l + (f as f64 * page.cost / page.size.as_f64())
                .max(0.0)
                .powf(1.0 / beta)
        }
    }
}

impl<O: Observer> Strategy for DcFp<O> {
    fn name(&self) -> &'static str {
        "DC-FP"
    }

    fn class(&self) -> StrategyClass {
        StrategyClass::Combined
    }

    fn on_push(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome {
        if self.ac.store().contains(page.page) {
            // Already promoted to AC; nothing to place.
            evicted.clear();
            return PushOutcome::Stored;
        }
        if self
            .pc
            .push_valued(page, Self::sub_value(page, subs), evicted)
        {
            PushOutcome::Stored
        } else {
            PushOutcome::Declined
        }
    }

    fn would_store(&self, page: &PageRef, subs: u32) -> bool {
        if self.ac.store().contains(page.page) || self.pc.store().contains(page.page) {
            return true;
        }
        let store = self.pc.store();
        if page.size > store.capacity() {
            return false;
        }
        store.free() + store.candidate_size_below(Self::sub_value(page, subs)) >= page.size
    }

    fn on_access(
        &mut self,
        page: &PageRef,
        _subs: u32,
        evicted: &mut Vec<PageId>,
    ) -> AccessOutcome {
        if self.pc.store().contains(page.page) {
            // PC hit: move the page to AC, where it is henceforth judged by
            // its access pattern; the move may trigger a replacement in AC.
            self.pc.take(page.page);
            if O::ENABLED {
                self.obs
                    .relabel(page.page, page.size, RelabelDirection::PcToAc);
            }
            let _ = self
                .ac
                .access(page, Self::gd_value(self.beta, page), evicted);
            // The user-visible outcome is a hit: pages displaced inside AC
            // by the move are not reported (as before the scratch API).
            evicted.clear();
            return AccessOutcome::Hit;
        }
        self.ac
            .access(page, Self::gd_value(self.beta, page), evicted)
    }

    fn contains(&self, page: PageId) -> bool {
        self.pc.store().contains(page) || self.ac.store().contains(page)
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.pc.evict(page) || self.ac.evict(page)
    }

    fn capacity(&self) -> Bytes {
        self.pc.store().capacity() + self.ac.store().capacity()
    }

    fn used(&self) -> Bytes {
        self.pc.store().used() + self.ac.store().used()
    }

    fn len(&self) -> usize {
        self.pc.store().len() + self.ac.store().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u32, size: u64, cost: f64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), cost)
    }

    #[test]
    fn partition_sizes() {
        let d = DcFp::new(Bytes::new(100), 2.0);
        assert_eq!(d.pc_capacity(), Bytes::new(50));
        assert_eq!(d.ac_capacity(), Bytes::new(50));
        assert_eq!(d.capacity(), Bytes::new(100));
        let d = DcFp::with_fraction(Bytes::new(100), 2.0, 0.25);
        assert_eq!(d.pc_capacity(), Bytes::new(25));
        assert_eq!(d.ac_capacity(), Bytes::new(75));
    }

    #[test]
    fn pushes_confined_to_pc() {
        let mut ev = Vec::new();
        let mut d = DcFp::new(Bytes::new(40), 2.0);
        assert!(d.on_push(&page(1, 20, 1.0), 5, &mut ev).is_stored());
        // PC (20 bytes) is full; equal-value page declined even though AC
        // is empty: pushes never use AC space.
        assert_eq!(
            d.on_push(&page(2, 20, 1.0), 5, &mut ev),
            PushOutcome::Declined
        );
        // More valuable page displaces the first within PC.
        assert!(d.on_push(&page(3, 20, 1.0), 50, &mut ev).is_stored());
        assert!(!d.contains(PageId::new(1)));
    }

    #[test]
    fn pc_hit_moves_page_to_ac() {
        let mut ev = Vec::new();
        let mut d = DcFp::new(Bytes::new(40), 2.0);
        let p = page(1, 10, 1.0);
        d.on_push(&p, 5, &mut ev);
        assert_eq!(d.on_access(&p, 5, &mut ev), AccessOutcome::Hit);
        // Page now lives in AC: PC has room again for an equal-value push.
        assert!(d.on_push(&page(2, 20, 1.0), 5, &mut ev).is_stored());
        assert!(d.contains(p.page));
        assert_eq!(d.len(), 2);
        // Second access is an AC hit.
        assert_eq!(d.on_access(&p, 5, &mut ev), AccessOutcome::Hit);
    }

    #[test]
    fn re_push_after_promotion_is_noop() {
        let mut ev = Vec::new();
        let mut d = DcFp::new(Bytes::new(40), 2.0);
        let p = page(1, 10, 1.0);
        d.on_push(&p, 5, &mut ev);
        d.on_access(&p, 5, &mut ev); // promoted to AC
        assert_eq!(d.on_push(&p, 5, &mut ev), PushOutcome::Stored);
        assert!(ev.is_empty());
        assert!(d.would_store(&p, 0));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn misses_use_gdstar_on_ac() {
        let mut ev = Vec::new();
        let mut d = DcFp::new(Bytes::new(40), 2.0);
        // Fill AC (20 bytes) through misses.
        assert_eq!(
            d.on_access(&page(1, 10, 1.0), 0, &mut ev),
            AccessOutcome::MissAdmitted
        );
        assert_eq!(
            d.on_access(&page(2, 10, 1.0), 0, &mut ev),
            AccessOutcome::MissAdmitted
        );
        // Third miss evicts within AC only.
        let out = d.on_access(&page(3, 10, 1.0), 0, &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev.len(), 1);
        assert_eq!(d.used(), Bytes::new(20));
    }

    #[test]
    fn move_can_trigger_ac_replacement() {
        let mut ev = Vec::new();
        let mut d = DcFp::new(Bytes::new(40), 2.0);
        // Fill AC with two cold pages.
        d.on_access(&page(1, 10, 1.0), 0, &mut ev);
        d.on_access(&page(2, 10, 1.0), 0, &mut ev);
        // Push then access page 3: the PC->AC move must evict from AC.
        d.on_push(&page(3, 20, 1.0), 9, &mut ev);
        assert_eq!(
            d.on_access(&page(3, 20, 1.0), 9, &mut ev),
            AccessOutcome::Hit
        );
        assert!(d.contains(PageId::new(3)));
        assert_eq!(d.ac_capacity(), Bytes::new(20));
        assert!(!d.contains(PageId::new(1)) && !d.contains(PageId::new(2)));
    }

    #[test]
    fn names_and_bounds() {
        let d = DcFp::new(Bytes::new(10), 2.0);
        assert_eq!(d.name(), "DC-FP");
        assert_eq!(d.class(), StrategyClass::Combined);
        assert!(d.is_empty());
    }

    #[test]
    fn dense_layout_matches_sparse() {
        let mut ev_s = Vec::new();
        let mut ev_d = Vec::new();
        let mut sparse = DcFp::new(Bytes::new(60), 2.0);
        let mut dense = DcFp::with_fraction_layout(
            Bytes::new(60),
            2.0,
            0.5,
            Layout::Dense { page_count: 30 },
            ObsHandle::disabled(),
        );
        let mut x = 0x5151_5151u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..3_000u32 {
            let p = page((rng() % 30) as u32, rng() % 15 + 1, (rng() % 5 + 1) as f64);
            let subs = (rng() % 20) as u32;
            if rng() % 2 == 0 {
                assert_eq!(
                    sparse.on_push(&p, subs, &mut ev_s),
                    dense.on_push(&p, subs, &mut ev_d),
                    "push diverged at step {i}"
                );
            } else {
                assert_eq!(
                    sparse.on_access(&p, subs, &mut ev_s),
                    dense.on_access(&p, subs, &mut ev_d),
                    "access diverged at step {i}"
                );
            }
            assert_eq!(ev_s, ev_d, "evictions diverged at step {i}");
            assert_eq!(sparse.used(), dense.used());
        }
    }

    #[test]
    #[should_panic(expected = "pc_fraction")]
    fn rejects_bad_fraction() {
        let _ = DcFp::with_fraction(Bytes::new(10), 2.0, 1.0);
    }
}
