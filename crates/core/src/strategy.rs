//! The content-distribution strategy abstraction.

use std::fmt;

use pscd_types::{Bytes, PageId};

pub use pscd_cache::{AccessOutcome, PageRef};

/// Where a strategy sits in the paper's when/how taxonomy (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyClass {
    /// Placement only when users access pages (traditional caching).
    AccessTime,
    /// Placement only when the matching engine pushes pages.
    PushTime,
    /// Both push-time and access-time placement.
    Combined,
}

/// What happened when a matched page was pushed to a proxy.
///
/// Evicted pages are reported through the caller-provided scratch buffer
/// of [`Strategy::on_push`], not carried here — keeping the outcome a
/// plain enum is what lets the replay hot loop run without heap
/// allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The proxy stored the page, evicting the pages listed in the
    /// operation's scratch buffer (possibly none).
    Stored,
    /// The proxy declined the page (not valuable enough / no push module).
    Declined,
}

impl PushOutcome {
    /// `true` if the page entered the cache.
    pub fn is_stored(&self) -> bool {
        matches!(self, PushOutcome::Stored)
    }
}

/// A per-proxy content-distribution strategy: the paper's unit of
/// comparison.
///
/// Each proxy server runs one `Strategy` instance. The delivery engine
/// drives it through two entry points:
///
/// * [`on_push`](Strategy::on_push) — the matching engine determined that
///   a freshly published page matches `subs` subscriptions at this proxy
///   (push-time placement opportunity);
/// * [`on_access`](Strategy::on_access) — a subscriber attached to this
///   proxy requests the page (access-time placement opportunity).
///
/// `subs` is the number of subscriptions matching the page at this proxy
/// (`f_S(p)` / `s` in the paper's equations 2–5); access-only strategies
/// ignore it.
pub trait Strategy: fmt::Debug {
    /// Short stable identifier used in reports ("GD*", "SG2", "DC-LAP", …).
    fn name(&self) -> &'static str;

    /// Taxonomy position (Table 1).
    fn class(&self) -> StrategyClass;

    /// Handles a push-time placement opportunity. `evicted` is a
    /// caller-owned scratch buffer: it is cleared on entry and holds the
    /// evicted pages on return (empty unless the outcome is
    /// [`PushOutcome::Stored`]).
    fn on_push(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome;

    /// Pure predicate: would [`on_push`](Strategy::on_push) store this page
    /// right now? Used by the Pushing-When-Necessary scheme (§5.6), where
    /// the proxy evaluates the page's meta-information before the publisher
    /// transfers any content.
    fn would_store(&self, page: &PageRef, subs: u32) -> bool;

    /// Handles a user request for `page` at this proxy. `evicted` follows
    /// the same scratch-buffer contract as [`on_push`](Strategy::on_push).
    fn on_access(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> AccessOutcome;

    /// `true` if the page is currently cached (in any cache portion).
    fn contains(&self, page: PageId) -> bool;

    /// Total cache capacity.
    fn capacity(&self) -> Bytes;

    /// Bytes in use.
    fn used(&self) -> Bytes;

    /// Number of cached pages.
    fn len(&self) -> usize;

    /// `true` if nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops `page` from the cache (its content became stale: a newer
    /// version was published). Returns `true` if it was cached. The
    /// strategy's statistics for other pages are unaffected.
    fn invalidate(&mut self, page: PageId) -> bool;

    /// `true` if the strategy has a push-time module (i.e. pushes should be
    /// routed to it at all).
    fn uses_push(&self) -> bool {
        !matches!(self.class(), StrategyClass::AccessTime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_outcome_predicates() {
        assert!(PushOutcome::Stored.is_stored());
        assert!(!PushOutcome::Declined.is_stored());
    }
}
