//! Layout-aware resident-page tables shared by the heap-based strategies
//! (DM, DC-AP/DC-LAP).

use std::collections::HashMap;

use pscd_cache::Layout;
use pscd_types::PageId;

/// Sentinel live-list index marking a vacant dense slot.
const NO_IDX: u32 = u32::MAX;

/// The page → live-list-position index.
#[derive(Debug)]
enum Index {
    Sparse(HashMap<PageId, u32>),
    Dense(Vec<u32>),
}

impl Index {
    #[inline]
    fn get(&self, page: PageId) -> Option<u32> {
        match self {
            Index::Sparse(m) => m.get(&page).copied(),
            Index::Dense(v) => v.get(page.as_usize()).copied().filter(|&i| i != NO_IDX),
        }
    }

    #[inline]
    fn set(&mut self, page: PageId, idx: u32) {
        match self {
            Index::Sparse(m) => {
                m.insert(page, idx);
            }
            Index::Dense(v) => v[page.as_usize()] = idx,
        }
    }

    #[inline]
    fn take(&mut self, page: PageId) -> Option<u32> {
        match self {
            Index::Sparse(m) => m.remove(&page),
            Index::Dense(v) => {
                let slot = v.get_mut(page.as_usize())?;
                if *slot == NO_IDX {
                    None
                } else {
                    Some(std::mem::replace(slot, NO_IDX))
                }
            }
        }
    }
}

/// Resident-page table: a page → position index over a compact
/// `(page, entry)` live list, so full scans (candidate sizing,
/// stale-page sweeps) cost O(resident pages) in both layouts instead of
/// O(page universe) in dense mode — and the dense form preallocates only
/// one `u32` per page ordinal, keeping construction a cheap sentinel
/// fill no matter how fat the entry type is.
#[derive(Debug)]
pub(crate) struct EntryTable<E> {
    index: Index,
    live: Vec<(PageId, E)>,
}

impl<E> EntryTable<E> {
    pub(crate) fn with_layout(layout: Layout) -> Self {
        match layout {
            Layout::Sparse => Self {
                index: Index::Sparse(HashMap::new()),
                live: Vec::new(),
            },
            Layout::Dense { page_count } => Self {
                index: Index::Dense(vec![NO_IDX; page_count]),
                live: Vec::with_capacity(page_count),
            },
        }
    }

    pub(crate) fn get(&self, page: PageId) -> Option<&E> {
        self.index.get(page).map(|i| &self.live[i as usize].1)
    }

    pub(crate) fn get_mut(&mut self, page: PageId) -> Option<&mut E> {
        self.index.get(page).map(|i| &mut self.live[i as usize].1)
    }

    pub(crate) fn contains(&self, page: PageId) -> bool {
        self.index.get(page).is_some()
    }

    /// Inserts a fresh entry. The page must not be resident.
    pub(crate) fn insert(&mut self, page: PageId, entry: E) {
        debug_assert!(self.index.get(page).is_none(), "insert over a live entry");
        self.index.set(page, self.live.len() as u32);
        self.live.push((page, entry));
    }

    pub(crate) fn remove(&mut self, page: PageId) -> Option<E> {
        let idx = self.index.take(page)? as usize;
        let (_, entry) = self.live.swap_remove(idx);
        if let Some(&(moved, _)) = self.live.get(idx) {
            self.index.set(moved, idx as u32);
        }
        Some(entry)
    }

    pub(crate) fn len(&self) -> usize {
        self.live.len()
    }

    /// Removes every entry, keeping the layout (and the dense form's
    /// preallocated index).
    pub(crate) fn clear(&mut self) {
        match &mut self.index {
            Index::Sparse(m) => m.clear(),
            Index::Dense(v) => v.fill(NO_IDX),
        }
        self.live.clear();
    }

    /// Iterates resident entries (arbitrary order — callers must only do
    /// order-insensitive work, e.g. commutative sums or sort-after).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (PageId, &E)> {
        self.live.iter().map(|(p, e)| (*p, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_and_dense_agree_under_churn() {
        let mut sparse = EntryTable::<u32>::with_layout(Layout::Sparse);
        let mut dense = EntryTable::<u32>::with_layout(Layout::Dense { page_count: 20 });
        let mut x = 0x0bad_cafeu64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..2_000u32 {
            let page = PageId::new((rng() % 20) as u32);
            match rng() % 3 {
                0 => {
                    if !sparse.contains(page) {
                        sparse.insert(page, i);
                        dense.insert(page, i);
                    }
                }
                1 => {
                    assert_eq!(sparse.remove(page), dense.remove(page));
                }
                _ => {
                    assert_eq!(sparse.get(page), dense.get(page));
                }
            }
            assert_eq!(sparse.len(), dense.len());
            // The live list covers exactly the resident pages.
            let mut a: Vec<u32> = sparse.iter().map(|(_, e)| *e).collect();
            let mut b: Vec<u32> = dense.iter().map(|(_, e)| *e).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn live_indices_stay_honest_after_swap_remove() {
        let mut t = EntryTable::<u32>::with_layout(Layout::Dense { page_count: 8 });
        for i in 0..8 {
            t.insert(PageId::new(i), i);
        }
        t.remove(PageId::new(0)); // last entry swaps into slot 0
        for (page, &e) in t.iter() {
            assert_eq!(*t.get(page).unwrap(), e);
        }
        assert_eq!(t.len(), 7);
        // Mutate through get_mut and observe through iter.
        *t.get_mut(PageId::new(7)).unwrap() = 99;
        assert!(t.iter().any(|(_, &e)| e == 99));
    }
}
