//! Adapter exposing classic access-time policies as strategies.

use pscd_cache::{AccessOutcome, CachePolicy, PageRef};
use pscd_types::{Bytes, PageId};

use crate::{PushOutcome, Strategy, StrategyClass};

/// Wraps any access-time [`CachePolicy`] (GD\*, LRU, GDS, LFU-DA) as a
/// [`Strategy`] with no push-time module — the paper's baseline row of
/// Table 1.
///
/// # Examples
///
/// ```
/// use pscd_cache::{GdStar, PageRef};
/// use pscd_core::{AccessOnly, Strategy, StrategyClass};
/// use pscd_types::{Bytes, PageId};
///
/// let mut s = AccessOnly::new(GdStar::new(Bytes::from_kib(4), 2.0));
/// assert_eq!(s.class(), StrategyClass::AccessTime);
/// let page = PageRef::new(PageId::new(0), Bytes::new(100), 1.0);
/// let mut evicted = Vec::new();
/// // Pushes are declined: there is no push module.
/// assert!(!s.on_push(&page, 10, &mut evicted).is_stored());
/// assert!(s.on_access(&page, 0, &mut evicted).is_miss());
/// assert!(s.on_access(&page, 0, &mut evicted).is_hit());
/// ```
#[derive(Debug)]
pub struct AccessOnly<P> {
    policy: P,
}

impl<P: CachePolicy> AccessOnly<P> {
    /// Wraps a cache policy.
    pub fn new(policy: P) -> Self {
        Self { policy }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the wrapped policy (state restoration).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Unwraps the policy.
    pub fn into_inner(self) -> P {
        self.policy
    }
}

impl<P: CachePolicy> Strategy for AccessOnly<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn class(&self) -> StrategyClass {
        StrategyClass::AccessTime
    }

    fn on_push(&mut self, _page: &PageRef, _subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome {
        evicted.clear();
        PushOutcome::Declined
    }

    fn would_store(&self, _page: &PageRef, _subs: u32) -> bool {
        false
    }

    fn on_access(
        &mut self,
        page: &PageRef,
        _subs: u32,
        evicted: &mut Vec<PageId>,
    ) -> AccessOutcome {
        self.policy.access(page, evicted)
    }

    fn contains(&self, page: PageId) -> bool {
        self.policy.contains(page)
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.policy.invalidate(page)
    }

    fn capacity(&self) -> Bytes {
        self.policy.capacity()
    }

    fn used(&self) -> Bytes {
        self.policy.used()
    }

    fn len(&self) -> usize {
        self.policy.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_cache::Lru;

    fn page(i: u32, size: u64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), 1.0)
    }

    #[test]
    fn pushes_never_store() {
        let mut ev = Vec::new();
        let mut s = AccessOnly::new(Lru::new(Bytes::new(100)));
        assert_eq!(s.on_push(&page(1, 10), 100, &mut ev), PushOutcome::Declined);
        assert!(!s.would_store(&page(1, 10), 100));
        assert!(!s.uses_push());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn accesses_delegate() {
        let mut ev = Vec::new();
        let mut s = AccessOnly::new(Lru::new(Bytes::new(100)));
        assert!(s.on_access(&page(1, 10), 0, &mut ev).is_miss());
        assert!(s.contains(PageId::new(1)));
        assert!(s.on_access(&page(1, 10), 0, &mut ev).is_hit());
        assert_eq!(s.used(), Bytes::new(10));
        assert_eq!(s.capacity(), Bytes::new(100));
        assert_eq!(s.name(), "LRU");
        assert!(!s.is_empty());
        assert_eq!(s.policy().len(), 1);
        assert_eq!(s.into_inner().len(), 1);
    }
}
