//! Strategy factory for experiments and benchmarks.

use serde::{Deserialize, Serialize};

use pscd_cache::snapshot::put_u8;
use pscd_cache::{
    AccessOutcome, GdStar, Gds, Layout, LfuDa, Lru, PageRef, SnapshotError, SnapshotReader,
};
use pscd_obs::{NullObserver, ObsHandle, Observer};
use pscd_types::{Bytes, PageId};

use crate::{
    AccessOnly, DcAdaptive, DcFp, DualMethods, PushOutcome, SingleCache, Strategy, StrategyClass,
    Sub,
};

/// A buildable description of every strategy in the paper (plus the classic
/// access-only baselines), used to parameterize experiments.
///
/// # Examples
///
/// ```
/// use pscd_core::StrategyKind;
/// use pscd_types::Bytes;
///
/// let strategy = StrategyKind::Sg2 { beta: 2.0 }.build(Bytes::from_kib(64));
/// assert_eq!(strategy.name(), "SG2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Least-recently-used (access-only baseline).
    Lru,
    /// GreedyDual-Size (access-only baseline).
    Gds,
    /// LFU with dynamic aging (access-only baseline).
    LfuDa,
    /// GreedyDual\* — the paper's access-time baseline (eq. 1).
    GdStar {
        /// Popularity/recency balance β.
        beta: f64,
    },
    /// Push-time-only subscription-driven placement (eq. 2).
    Sub,
    /// Subscription-GD\*-1: `f = s + a` (eq. 3).
    Sg1 {
        /// Popularity/recency balance β.
        beta: f64,
    },
    /// Subscription-GD\*-2: `f = s − a` (eq. 4).
    Sg2 {
        /// Popularity/recency balance β.
        beta: f64,
    },
    /// Subscription-request: `V = (s − a)·c/s` (eq. 5).
    Sr,
    /// Dual-Methods: GD\* at access time, SUB at push time, shared cache.
    Dm {
        /// β of the GD\* module.
        beta: f64,
    },
    /// Dual-Caches with fixed partition.
    DcFp {
        /// β of the GD\* (access-cache) module.
        beta: f64,
        /// Fraction of the storage given to the push cache (paper: 0.5).
        pc_fraction: f64,
    },
    /// Dual-Caches with adaptive partition.
    DcAp {
        /// β of the GD\* (access-cache) module.
        beta: f64,
    },
    /// Dual-Caches with limited adaptive partition.
    DcLap {
        /// β of the GD\* (access-cache) module.
        beta: f64,
        /// Lower bound on the PC fraction (paper: 0.25).
        lo: f64,
        /// Upper bound on the PC fraction (paper: 0.75).
        hi: f64,
    },
}

impl StrategyKind {
    /// The paper's display name of this strategy.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Lru => "LRU",
            StrategyKind::Gds => "GDS",
            StrategyKind::LfuDa => "LFU-DA",
            StrategyKind::GdStar { .. } => "GD*",
            StrategyKind::Sub => "SUB",
            StrategyKind::Sg1 { .. } => "SG1",
            StrategyKind::Sg2 { .. } => "SG2",
            StrategyKind::Sr => "SR",
            StrategyKind::Dm { .. } => "DM",
            StrategyKind::DcFp { .. } => "DC-FP",
            StrategyKind::DcAp { .. } => "DC-AP",
            StrategyKind::DcLap { .. } => "DC-LAP",
        }
    }

    /// Instantiates the strategy for one proxy cache of the given capacity.
    pub fn build(&self, capacity: Bytes) -> Box<dyn Strategy> {
        self.build_observed(capacity, ObsHandle::disabled())
    }

    /// Instantiates the strategy with its cache decisions (admissions,
    /// evictions, relabels) reported to `obs`. With a
    /// [`NullObserver`](pscd_obs::NullObserver) handle this compiles to
    /// exactly [`build`](StrategyKind::build).
    pub fn build_observed<O: Observer>(
        &self,
        capacity: Bytes,
        obs: ObsHandle<O>,
    ) -> Box<dyn Strategy> {
        match *self {
            StrategyKind::Lru => Box::new(AccessOnly::new(Lru::with_observer(capacity, obs))),
            StrategyKind::Gds => Box::new(AccessOnly::new(Gds::with_observer(capacity, obs))),
            StrategyKind::LfuDa => Box::new(AccessOnly::new(LfuDa::with_observer(capacity, obs))),
            StrategyKind::GdStar { beta } => {
                Box::new(AccessOnly::new(GdStar::with_observer(capacity, beta, obs)))
            }
            StrategyKind::Sub => Box::new(Sub::with_observer(capacity, obs)),
            StrategyKind::Sg1 { beta } => Box::new(SingleCache::sg1_observed(capacity, beta, obs)),
            StrategyKind::Sg2 { beta } => Box::new(SingleCache::sg2_observed(capacity, beta, obs)),
            StrategyKind::Sr => Box::new(SingleCache::sr_observed(capacity, obs)),
            StrategyKind::Dm { beta } => Box::new(DualMethods::with_observer(capacity, beta, obs)),
            StrategyKind::DcFp { beta, pc_fraction } => Box::new(DcFp::with_fraction_observed(
                capacity,
                beta,
                pc_fraction,
                obs,
            )),
            StrategyKind::DcAp { beta } => Box::new(DcAdaptive::ap_observed(capacity, beta, obs)),
            StrategyKind::DcLap { beta, lo, hi } => Box::new(DcAdaptive::lap_with_bounds_observed(
                capacity, beta, lo, hi, obs,
            )),
        }
    }

    /// Instantiates the strategy as a concrete [`StrategyImpl`] — the
    /// enum-dispatch form used by the replay hot loop — with an explicit
    /// state [`Layout`]. `Layout::Dense` preallocates every per-page table
    /// to the page-universe size, making the steady-state hot loop free of
    /// heap allocations (DM and DC-AP/DC-LAP keep lazy-deletion heaps and
    /// are amortized allocation-free; see DESIGN.md §12).
    pub fn build_impl_observed<O: Observer>(
        &self,
        capacity: Bytes,
        layout: Layout,
        obs: ObsHandle<O>,
    ) -> StrategyImpl<O> {
        match *self {
            StrategyKind::Lru => {
                StrategyImpl::Lru(AccessOnly::new(Lru::with_layout(capacity, layout, obs)))
            }
            StrategyKind::Gds => {
                StrategyImpl::Gds(AccessOnly::new(Gds::with_layout(capacity, layout, obs)))
            }
            StrategyKind::LfuDa => {
                StrategyImpl::LfuDa(AccessOnly::new(LfuDa::with_layout(capacity, layout, obs)))
            }
            StrategyKind::GdStar { beta } => StrategyImpl::GdStar(AccessOnly::new(
                GdStar::with_layout(capacity, beta, layout, obs),
            )),
            StrategyKind::Sub => StrategyImpl::Sub(Sub::with_layout(capacity, layout, obs)),
            StrategyKind::Sg1 { beta } => {
                StrategyImpl::Single(SingleCache::sg1_with_layout(capacity, beta, layout, obs))
            }
            StrategyKind::Sg2 { beta } => {
                StrategyImpl::Single(SingleCache::sg2_with_layout(capacity, beta, layout, obs))
            }
            StrategyKind::Sr => {
                StrategyImpl::Single(SingleCache::sr_with_layout(capacity, layout, obs))
            }
            StrategyKind::Dm { beta } => {
                StrategyImpl::Dm(DualMethods::with_layout(capacity, beta, layout, obs))
            }
            StrategyKind::DcFp { beta, pc_fraction } => StrategyImpl::DcFp(
                DcFp::with_fraction_layout(capacity, beta, pc_fraction, layout, obs),
            ),
            StrategyKind::DcAp { beta } => {
                StrategyImpl::Dc(DcAdaptive::ap_with_layout(capacity, beta, layout, obs))
            }
            StrategyKind::DcLap { beta, lo, hi } => StrategyImpl::Dc(
                DcAdaptive::lap_with_bounds_layout(capacity, beta, lo, hi, layout, obs),
            ),
        }
    }

    /// The paper's defaults: DC-FP at 50/50, DC-LAP bounded to [25%, 75%].
    pub fn dc_fp(beta: f64) -> Self {
        StrategyKind::DcFp {
            beta,
            pc_fraction: 0.5,
        }
    }

    /// DC-LAP with the paper's bounds.
    pub fn dc_lap(beta: f64) -> Self {
        StrategyKind::DcLap {
            beta,
            lo: 0.25,
            hi: 0.75,
        }
    }

    /// The lineup of figure 4: GD\*, SUB, SG1, SG2, SR, DC-LAP.
    pub fn figure4_lineup(beta: f64) -> Vec<StrategyKind> {
        vec![
            StrategyKind::GdStar { beta },
            StrategyKind::Sub,
            StrategyKind::Sg1 { beta },
            StrategyKind::Sg2 { beta },
            StrategyKind::Sr,
            Self::dc_lap(beta),
        ]
    }

    /// The lineup of figure 3: GD\*, DM, DC-FP, DC-AP, DC-LAP.
    pub fn figure3_lineup(beta: f64) -> Vec<StrategyKind> {
        vec![
            StrategyKind::GdStar { beta },
            StrategyKind::Dm { beta },
            Self::dc_fp(beta),
            StrategyKind::DcAp { beta },
            Self::dc_lap(beta),
        ]
    }
}

/// A concrete, enum-dispatched strategy: every paper strategy as a variant,
/// plus a [`Box<dyn Strategy>`] escape hatch for externally-defined
/// strategies.
///
/// The replay hot loop stores proxies as `StrategyImpl` so per-event
/// dispatch is a jump table over a small enum instead of a virtual call,
/// and so the compiler can inline the strategy bodies into the loop.
/// `StrategyImpl` itself implements [`Strategy`], so any code written
/// against the trait accepts it unchanged.
#[derive(Debug)]
pub enum StrategyImpl<O: Observer = NullObserver> {
    /// LRU behind the access-only adapter.
    Lru(AccessOnly<Lru<O>>),
    /// GreedyDual-Size behind the access-only adapter.
    Gds(AccessOnly<Gds<O>>),
    /// LFU-DA behind the access-only adapter.
    LfuDa(AccessOnly<LfuDa<O>>),
    /// GD\* behind the access-only adapter.
    GdStar(AccessOnly<GdStar<O>>),
    /// Push-time-only SUB.
    Sub(Sub<O>),
    /// SG1 / SG2 / SR.
    Single(SingleCache<O>),
    /// Dual-Methods.
    Dm(DualMethods<O>),
    /// Dual-Caches, fixed partition.
    DcFp(DcFp<O>),
    /// DC-AP / DC-LAP.
    Dc(DcAdaptive<O>),
    /// Escape hatch: dynamic dispatch over an arbitrary strategy.
    Dyn(Box<dyn Strategy>),
}

impl<O: Observer> StrategyImpl<O> {
    /// The wire tag identifying this variant in a snapshot stream.
    fn snapshot_tag(&self) -> Result<u8, SnapshotError> {
        Ok(match self {
            StrategyImpl::Lru(_) => 0,
            StrategyImpl::Gds(_) => 1,
            StrategyImpl::LfuDa(_) => 2,
            StrategyImpl::GdStar(_) => 3,
            StrategyImpl::Sub(_) => 4,
            StrategyImpl::Single(_) => 5,
            StrategyImpl::Dm(_) => 6,
            StrategyImpl::DcFp(_) => 7,
            StrategyImpl::Dc(_) => 8,
            StrategyImpl::Dyn(_) => {
                return Err(SnapshotError::Unsupported(
                    "dyn strategies cannot be snapshotted",
                ))
            }
        })
    }

    /// Serializes the strategy's mutable state (cache contents, heap
    /// priorities, aging clocks) into `out`, prefixed with a variant tag.
    ///
    /// Configuration — capacity, β, partition bounds — is *not* encoded:
    /// snapshots are restored into a freshly built strategy of the same
    /// [`StrategyKind`], which already carries it. [`StrategyImpl::Dyn`]
    /// is opaque and returns [`SnapshotError::Unsupported`].
    pub fn encode_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        put_u8(out, self.snapshot_tag()?);
        match self {
            StrategyImpl::Lru(a) => a.policy().encode_state(out),
            StrategyImpl::Gds(a) => a.policy().encode_state(out),
            StrategyImpl::LfuDa(a) => a.policy().encode_state(out),
            StrategyImpl::GdStar(a) => a.policy().encode_state(out),
            StrategyImpl::Sub(s) => s.encode_state(out),
            StrategyImpl::Single(s) => s.encode_state(out),
            StrategyImpl::Dm(s) => s.encode_state(out),
            StrategyImpl::DcFp(s) => s.encode_state(out),
            StrategyImpl::Dc(s) => s.encode_state(out),
            StrategyImpl::Dyn(_) => unreachable!("snapshot_tag rejects Dyn"),
        }
        Ok(())
    }

    /// Restores state captured by [`encode_snapshot`](Self::encode_snapshot)
    /// into this strategy, which must be the same variant (built from the
    /// same [`StrategyKind`] and layout). On error the strategy's state is
    /// unspecified and it should be discarded.
    pub fn decode_snapshot(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let tag = r.read_u8()?;
        if tag != self.snapshot_tag()? {
            return Err(SnapshotError::Corrupt("snapshot tag mismatches strategy"));
        }
        match self {
            StrategyImpl::Lru(a) => a.policy_mut().decode_state(r),
            StrategyImpl::Gds(a) => a.policy_mut().decode_state(r),
            StrategyImpl::LfuDa(a) => a.policy_mut().decode_state(r),
            StrategyImpl::GdStar(a) => a.policy_mut().decode_state(r),
            StrategyImpl::Sub(s) => s.decode_state(r),
            StrategyImpl::Single(s) => s.decode_state(r),
            StrategyImpl::Dm(s) => s.decode_state(r),
            StrategyImpl::DcFp(s) => s.decode_state(r),
            StrategyImpl::Dc(s) => s.decode_state(r),
            StrategyImpl::Dyn(_) => unreachable!("snapshot_tag rejects Dyn"),
        }
    }
}

impl<O: Observer> From<Box<dyn Strategy>> for StrategyImpl<O> {
    fn from(strategy: Box<dyn Strategy>) -> Self {
        StrategyImpl::Dyn(strategy)
    }
}

macro_rules! dispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            StrategyImpl::Lru($s) => $body,
            StrategyImpl::Gds($s) => $body,
            StrategyImpl::LfuDa($s) => $body,
            StrategyImpl::GdStar($s) => $body,
            StrategyImpl::Sub($s) => $body,
            StrategyImpl::Single($s) => $body,
            StrategyImpl::Dm($s) => $body,
            StrategyImpl::DcFp($s) => $body,
            StrategyImpl::Dc($s) => $body,
            StrategyImpl::Dyn($s) => $body,
        }
    };
}

impl<O: Observer> Strategy for StrategyImpl<O> {
    fn name(&self) -> &'static str {
        dispatch!(self, s => s.name())
    }

    fn class(&self) -> StrategyClass {
        dispatch!(self, s => s.class())
    }

    fn on_push(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome {
        dispatch!(self, s => s.on_push(page, subs, evicted))
    }

    fn would_store(&self, page: &PageRef, subs: u32) -> bool {
        dispatch!(self, s => s.would_store(page, subs))
    }

    fn on_access(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> AccessOutcome {
        dispatch!(self, s => s.on_access(page, subs, evicted))
    }

    fn contains(&self, page: PageId) -> bool {
        dispatch!(self, s => s.contains(page))
    }

    fn capacity(&self) -> Bytes {
        dispatch!(self, s => s.capacity())
    }

    fn used(&self) -> Bytes {
        dispatch!(self, s => s.used())
    }

    fn len(&self) -> usize {
        dispatch!(self, s => s.len())
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        dispatch!(self, s => s.invalidate(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_cache::PageRef;
    use pscd_types::PageId;

    #[test]
    fn every_kind_builds_and_reports_its_name() {
        let kinds = [
            StrategyKind::Lru,
            StrategyKind::Gds,
            StrategyKind::LfuDa,
            StrategyKind::GdStar { beta: 2.0 },
            StrategyKind::Sub,
            StrategyKind::Sg1 { beta: 2.0 },
            StrategyKind::Sg2 { beta: 2.0 },
            StrategyKind::Sr,
            StrategyKind::Dm { beta: 2.0 },
            StrategyKind::dc_fp(2.0),
            StrategyKind::DcAp { beta: 2.0 },
            StrategyKind::dc_lap(2.0),
        ];
        let mut ev = Vec::new();
        for kind in kinds {
            let mut s = kind.build(Bytes::from_kib(4));
            assert_eq!(s.name(), kind.name());
            assert_eq!(s.capacity(), Bytes::from_kib(4));
            // Smoke: run one push and one access through each.
            let p = PageRef::new(PageId::new(0), Bytes::new(128), 1.0);
            let _ = s.on_push(&p, 3, &mut ev);
            let _ = s.on_access(&p, 3, &mut ev);
            assert!(s.used() <= s.capacity());
        }
    }

    #[test]
    fn observed_builds_report_admissions() {
        use pscd_obs::{SharedObserver, StatsObserver};
        use pscd_types::ServerId;

        for kind in [
            StrategyKind::GdStar { beta: 2.0 },
            StrategyKind::Sub,
            StrategyKind::Sg2 { beta: 2.0 },
            StrategyKind::Dm { beta: 2.0 },
            StrategyKind::dc_fp(2.0),
            StrategyKind::dc_lap(2.0),
        ] {
            let mut ev = Vec::new();
            let shared = SharedObserver::new(StatsObserver::new());
            let mut s = kind.build_observed(Bytes::from_kib(4), shared.handle(ServerId::new(0)));
            let p = PageRef::new(PageId::new(0), Bytes::new(128), 1.0);
            let _ = s.on_push(&p, 3, &mut ev);
            let _ = s.on_access(&p, 3, &mut ev);
            drop(s);
            let stats = shared.try_unwrap().unwrap();
            let admits =
                stats.registry().counter("admit.access") + stats.registry().counter("admit.push");
            assert!(admits >= 1, "{} reported no admissions", kind.name());
        }
    }

    #[test]
    fn snapshots_round_trip_for_every_kind() {
        use pscd_obs::ObsHandle;

        let kinds = [
            StrategyKind::Lru,
            StrategyKind::Gds,
            StrategyKind::LfuDa,
            StrategyKind::GdStar { beta: 2.0 },
            StrategyKind::Sub,
            StrategyKind::Sg1 { beta: 2.0 },
            StrategyKind::Sg2 { beta: 2.0 },
            StrategyKind::Sr,
            StrategyKind::Dm { beta: 2.0 },
            StrategyKind::dc_fp(2.0),
            StrategyKind::DcAp { beta: 2.0 },
            StrategyKind::dc_lap(2.0),
        ];
        let layout = Layout::Dense { page_count: 32 };
        for kind in kinds {
            let mut live = kind.build_impl_observed(Bytes::new(300), layout, ObsHandle::disabled());
            let mut ev = Vec::new();
            let mut x = 0x9e37_79b9u64;
            let mut rng = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            // A page's size and cost are fixed attributes of the page.
            let page = |i: u32| {
                PageRef::new(PageId::new(i), Bytes::new((i as u64 * 7) % 40 + 1), {
                    (i % 4 + 1) as f64
                })
            };
            // Churn, snapshot mid-stream, restore into a fresh instance,
            // then verify both copies behave identically afterwards.
            for _ in 0..500 {
                let p = page((rng() % 32) as u32);
                let subs = (rng() % 20) as u32;
                match rng() % 5 {
                    0 | 1 => drop(live.on_push(&p, subs, &mut ev)),
                    4 => drop(live.invalidate(p.page)),
                    _ => drop(live.on_access(&p, subs, &mut ev)),
                }
            }
            let mut buf = Vec::new();
            live.encode_snapshot(&mut buf)
                .unwrap_or_else(|e| panic!("{}: encode failed: {e}", kind.name()));
            let mut restored =
                kind.build_impl_observed(Bytes::new(300), layout, ObsHandle::disabled());
            let mut r = SnapshotReader::new(&buf);
            restored
                .decode_snapshot(&mut r)
                .unwrap_or_else(|e| panic!("{}: decode failed: {e}", kind.name()));
            assert!(r.is_empty(), "{}: trailing snapshot bytes", kind.name());
            assert_eq!(live.used(), restored.used(), "{}", kind.name());
            assert_eq!(live.len(), restored.len(), "{}", kind.name());

            let mut ev_a = Vec::new();
            let mut ev_b = Vec::new();
            for _ in 0..500 {
                let p = page((rng() % 32) as u32);
                let subs = (rng() % 20) as u32;
                match rng() % 5 {
                    0 | 1 => assert_eq!(
                        live.on_push(&p, subs, &mut ev_a),
                        restored.on_push(&p, subs, &mut ev_b),
                        "{}: push diverged",
                        kind.name()
                    ),
                    4 => assert_eq!(
                        live.invalidate(p.page),
                        restored.invalidate(p.page),
                        "{}: invalidate diverged",
                        kind.name()
                    ),
                    _ => assert_eq!(
                        live.on_access(&p, subs, &mut ev_a),
                        restored.on_access(&p, subs, &mut ev_b),
                        "{}: access diverged",
                        kind.name()
                    ),
                }
                assert_eq!(ev_a, ev_b, "{}: evictions diverged", kind.name());
                assert_eq!(live.used(), restored.used(), "{}", kind.name());
            }
            // Re-encoding both sides must now be byte-identical.
            let mut buf_a = Vec::new();
            let mut buf_b = Vec::new();
            live.encode_snapshot(&mut buf_a).unwrap();
            restored.encode_snapshot(&mut buf_b).unwrap();
            assert_eq!(buf_a, buf_b, "{}: re-encoded snapshots differ", kind.name());
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_tag_and_dyn() {
        use pscd_obs::ObsHandle;

        let layout = Layout::Dense { page_count: 8 };
        let lru: StrategyImpl =
            StrategyKind::Lru.build_impl_observed(Bytes::new(100), layout, ObsHandle::disabled());
        let mut buf = Vec::new();
        lru.encode_snapshot(&mut buf).unwrap();
        let mut gds: StrategyImpl =
            StrategyKind::Gds.build_impl_observed(Bytes::new(100), layout, ObsHandle::disabled());
        let err = gds
            .decode_snapshot(&mut SnapshotReader::new(&buf))
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");

        let dynamic: StrategyImpl = StrategyKind::Lru.build(Bytes::new(100)).into();
        let err = dynamic.encode_snapshot(&mut Vec::new()).unwrap_err();
        assert!(matches!(err, SnapshotError::Unsupported(_)), "{err}");
    }

    #[test]
    fn lineups_match_the_figures() {
        let f4: Vec<&str> = StrategyKind::figure4_lineup(2.0)
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(f4, ["GD*", "SUB", "SG1", "SG2", "SR", "DC-LAP"]);
        let f3: Vec<&str> = StrategyKind::figure3_lineup(2.0)
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(f3, ["GD*", "DM", "DC-FP", "DC-AP", "DC-LAP"]);
    }
}
