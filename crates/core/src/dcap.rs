//! DC-AP and DC-LAP: dual caches with (limited) adaptive partition (§3.3).

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pscd_cache::{AccessOutcome, Layout, PageRef};
use pscd_obs::{AdmitOrigin, EvictReason, NullObserver, ObsHandle, Observer, RelabelDirection};
use pscd_types::{Bytes, PageId};

use crate::table::EntryTable;
use crate::{PushOutcome, Strategy, StrategyClass};

/// Which portion of the storage a page's bytes are labeled as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    /// Push-Cache: managed by SUB (subscription value).
    Pc,
    /// Access-Cache: managed by GD\* (access value).
    Ac,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: Bytes,
    side: Side,
    value: f64,
    stamp: u64,
    freq: u32,
    last_access_tick: u64,
}

#[derive(Debug, Clone, Copy)]
struct HeapItem {
    value: f64,
    stamp: u64,
    page: PageId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .value
            .partial_cmp(&self.value)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.stamp.cmp(&self.stamp))
            .then_with(|| other.page.cmp(&self.page))
    }
}

/// The paper's *Dual-Caches with Adaptive Partition* (DC-AP) and its
/// bounded variant *DC-LAP*.
///
/// Like DC-FP, the storage is split into a Push-Cache (SUB) and an
/// Access-Cache (GD\*), but the split is a *label* on each page's storage
/// rather than a wall:
///
/// * **Placing** (push): if SUB cannot store a page within the current PC
///   allocation, AC pages that have not been referenced *since the last
///   replacement in AC* become eviction candidates; the storage of the
///   least-valuable such pages is relabeled PC and used for the new page.
/// * **Locating** (access): when a PC page is requested, its storage is
///   relabeled AC in place — no move, no spurious AC replacement (the
///   fix over DC-FP the paper motivates).
///
/// DC-LAP additionally bounds the PC fraction of the storage (paper: 25% to
/// 75%); a re-partition that would violate the bounds is skipped, falling
/// back to DC-FP behaviour for that operation.
///
/// Because a page's value is refreshed on every access, the two eviction
/// orders are maintained as lazy-deletion heaps even in dense layout. The
/// heaps are preallocated to twice the page universe and compact stale
/// items in place when full, and the adaptive step's scratch pools are
/// preallocated too — DC-AP/DC-LAP are *strictly* allocation-free in
/// steady state (see DESIGN.md §12).
#[derive(Debug)]
pub struct DcAdaptive<O: Observer = NullObserver> {
    capacity: Bytes,
    /// Bytes currently allocated to the PC side (the rest is AC).
    pc_alloc: Bytes,
    used_pc: Bytes,
    used_ac: Bytes,
    entries: EntryTable<Entry>,
    pc_heap: BinaryHeap<HeapItem>,
    ac_heap: BinaryHeap<HeapItem>,
    /// GD\* inflation of the AC module.
    inflation: f64,
    beta: f64,
    tick: u64,
    /// Tick of the most recent replacement (eviction) in AC.
    ac_last_replacement: u64,
    /// Bounds on the PC fraction (DC-AP: (0, 1); DC-LAP: (0.25, 0.75)).
    lo: f64,
    hi: f64,
    name: &'static str,
    next_stamp: u64,
    /// Scratch for the adaptive step (the stale-AC pool and the planned
    /// victims), reused across calls so `plan_relabel` is allocation-free
    /// in steady state. `RefCell` because `would_store` plans through
    /// `&self`; never borrowed across a public call boundary.
    stale_scratch: RefCell<Vec<(PageId, f64, Bytes, u64)>>,
    victims_scratch: RefCell<Vec<PageId>>,
    obs: ObsHandle<O>,
}

impl DcAdaptive {
    /// Creates a DC-AP cache (unbounded adaptive partition, 50/50 start).
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn ap(capacity: Bytes, beta: f64) -> Self {
        Self::ap_observed(capacity, beta, ObsHandle::disabled())
    }

    /// Creates a DC-LAP cache with the paper's PC-fraction bounds
    /// `[0.25, 0.75]`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn lap(capacity: Bytes, beta: f64) -> Self {
        Self::lap_observed(capacity, beta, ObsHandle::disabled())
    }

    /// Creates a DC-LAP cache with custom PC-fraction bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite and
    /// `0 <= lo <= 0.5 <= hi <= 1`.
    pub fn lap_with_bounds(capacity: Bytes, beta: f64, lo: f64, hi: f64) -> Self {
        Self::with_bounds(capacity, beta, lo, hi, "DC-LAP", ObsHandle::disabled())
    }
}

impl<O: Observer> DcAdaptive<O> {
    /// [`ap`](DcAdaptive::ap) reporting cache decisions to `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn ap_observed(capacity: Bytes, beta: f64, obs: ObsHandle<O>) -> Self {
        Self::with_bounds(capacity, beta, 0.0, 1.0, "DC-AP", obs)
    }

    /// [`lap`](DcAdaptive::lap) reporting cache decisions to `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn lap_observed(capacity: Bytes, beta: f64, obs: ObsHandle<O>) -> Self {
        Self::with_bounds(capacity, beta, 0.25, 0.75, "DC-LAP", obs)
    }

    /// [`lap_with_bounds`](DcAdaptive::lap_with_bounds) reporting cache
    /// decisions to `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite and
    /// `0 <= lo <= 0.5 <= hi <= 1`.
    pub fn lap_with_bounds_observed(
        capacity: Bytes,
        beta: f64,
        lo: f64,
        hi: f64,
        obs: ObsHandle<O>,
    ) -> Self {
        Self::with_bounds(capacity, beta, lo, hi, "DC-LAP", obs)
    }

    /// [`ap`](DcAdaptive::ap) with an explicit state [`Layout`].
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn ap_with_layout(capacity: Bytes, beta: f64, layout: Layout, obs: ObsHandle<O>) -> Self {
        Self::with_bounds_layout(capacity, beta, 0.0, 1.0, "DC-AP", layout, obs)
    }

    /// [`lap_with_bounds`](DcAdaptive::lap_with_bounds) with an explicit
    /// state [`Layout`].
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite and
    /// `0 <= lo <= 0.5 <= hi <= 1`.
    pub fn lap_with_bounds_layout(
        capacity: Bytes,
        beta: f64,
        lo: f64,
        hi: f64,
        layout: Layout,
        obs: ObsHandle<O>,
    ) -> Self {
        Self::with_bounds_layout(capacity, beta, lo, hi, "DC-LAP", layout, obs)
    }

    fn with_bounds(
        capacity: Bytes,
        beta: f64,
        lo: f64,
        hi: f64,
        name: &'static str,
        obs: ObsHandle<O>,
    ) -> Self {
        Self::with_bounds_layout(capacity, beta, lo, hi, name, Layout::Sparse, obs)
    }

    fn with_bounds_layout(
        capacity: Bytes,
        beta: f64,
        lo: f64,
        hi: f64,
        name: &'static str,
        layout: Layout,
        obs: ObsHandle<O>,
    ) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        assert!(
            (0.0..=0.5).contains(&lo) && (0.5..=1.0).contains(&hi),
            "bounds must satisfy 0 <= lo <= 0.5 <= hi <= 1"
        );
        // Dense layout bounds live entries by the page universe, so heaps
        // preallocated to twice that never grow: when one fills, stale
        // lazy-deletion items are compacted in place (see `push_heap`),
        // leaving at least half the slots free. Strictly alloc-free in
        // steady state, compaction amortized O(1) per push.
        let heap_capacity = match layout {
            Layout::Dense { page_count } => page_count.saturating_mul(2).max(16),
            Layout::Sparse => 0,
        };
        // The adaptive-step pools hold at most one item per resident page.
        let scratch_capacity = match layout {
            Layout::Dense { page_count } => page_count,
            Layout::Sparse => 0,
        };
        Self {
            capacity,
            pc_alloc: capacity.scaled(0.5),
            used_pc: Bytes::ZERO,
            used_ac: Bytes::ZERO,
            entries: EntryTable::with_layout(layout),
            pc_heap: BinaryHeap::with_capacity(heap_capacity),
            ac_heap: BinaryHeap::with_capacity(heap_capacity),
            inflation: 0.0,
            beta,
            tick: 0,
            ac_last_replacement: 0,
            lo,
            hi,
            name,
            next_stamp: 0,
            stale_scratch: RefCell::new(Vec::with_capacity(scratch_capacity)),
            victims_scratch: RefCell::new(Vec::with_capacity(scratch_capacity)),
            obs,
        }
    }

    /// Bytes currently allocated to the push cache.
    pub fn pc_allocation(&self) -> Bytes {
        self.pc_alloc
    }

    /// Bytes currently allocated to the access cache.
    pub fn ac_allocation(&self) -> Bytes {
        self.capacity - self.pc_alloc
    }

    fn lo_bytes(&self) -> Bytes {
        self.capacity.scaled(self.lo)
    }

    fn hi_bytes(&self) -> Bytes {
        self.capacity.scaled(self.hi)
    }

    fn free_pc(&self) -> Bytes {
        self.pc_alloc.saturating_sub(self.used_pc)
    }

    fn free_ac(&self) -> Bytes {
        self.ac_allocation().saturating_sub(self.used_ac)
    }

    fn sub_value(page: &PageRef, subs: u32) -> f64 {
        subs as f64 * page.cost / page.size.as_f64()
    }

    fn gd_value(&self, freq: u32, page: &PageRef) -> f64 {
        self.inflation
            + (freq as f64 * page.cost / page.size.as_f64())
                .max(0.0)
                .powf(1.0 / self.beta)
    }

    fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Serializes the mutable state for a snapshot: the partition point,
    /// the AC module's GD\* registers, and every resident entry in
    /// live-list order (see [`DualMethods::encode_state`] on why stale
    /// lazy-deletion heap items need not be encoded).
    ///
    /// [`DualMethods::encode_state`]: crate::DualMethods
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        use pscd_cache::snapshot::{put_f64, put_u32, put_u64, put_u8};
        put_u64(out, self.pc_alloc.as_u64());
        put_f64(out, self.inflation);
        put_u64(out, self.tick);
        put_u64(out, self.ac_last_replacement);
        put_u64(out, self.next_stamp);
        put_u32(out, self.entries.len() as u32);
        for (page, e) in self.entries.iter() {
            put_u32(out, page.index());
            put_u64(out, e.size.as_u64());
            put_u8(out, matches!(e.side, Side::Ac) as u8);
            put_f64(out, e.value);
            put_u64(out, e.stamp);
            put_u32(out, e.freq);
            put_u64(out, e.last_access_tick);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        &mut self,
        r: &mut pscd_cache::SnapshotReader<'_>,
    ) -> Result<(), pscd_cache::SnapshotError> {
        use pscd_cache::SnapshotError;
        let pc_alloc = Bytes::new(r.read_u64()?);
        let inflation = r.read_f64()?;
        let tick = r.read_u64()?;
        let ac_last_replacement = r.read_u64()?;
        let next_stamp = r.read_u64()?;
        let n = r.read_u32()? as usize;
        if n > r.remaining() / 41 {
            return Err(SnapshotError::Corrupt("DC entry count overruns buffer"));
        }
        self.entries.clear();
        self.pc_heap.clear();
        self.ac_heap.clear();
        self.used_pc = Bytes::ZERO;
        self.used_ac = Bytes::ZERO;
        for _ in 0..n {
            let page = PageId::new(r.read_u32()?);
            let size = Bytes::new(r.read_u64()?);
            let side = match r.read_u8()? {
                0 => Side::Pc,
                1 => Side::Ac,
                _ => return Err(SnapshotError::Corrupt("bad DC side tag")),
            };
            let entry = Entry {
                size,
                side,
                value: r.read_f64()?,
                stamp: r.read_u64()?,
                freq: r.read_u32()?,
                last_access_tick: r.read_u64()?,
            };
            self.entries.insert(page, entry);
            let item = HeapItem {
                value: entry.value,
                stamp: entry.stamp,
                page,
            };
            match side {
                Side::Pc => self.used_pc += size,
                Side::Ac => self.used_ac += size,
            }
            self.push_heap(side, item);
        }
        self.pc_alloc = pc_alloc;
        self.inflation = inflation;
        self.tick = tick;
        self.ac_last_replacement = ac_last_replacement;
        self.next_stamp = next_stamp;
        Ok(())
    }

    fn insert(&mut self, page: &PageRef, side: Side, value: f64, freq: u32) {
        let stamp = self.stamp();
        self.entries.insert(
            page.page,
            Entry {
                size: page.size,
                side,
                value,
                stamp,
                freq,
                last_access_tick: self.tick,
            },
        );
        let item = HeapItem {
            value,
            stamp,
            page: page.page,
        };
        match side {
            Side::Pc => self.used_pc += page.size,
            Side::Ac => self.used_ac += page.size,
        }
        self.push_heap(side, item);
    }

    /// Pushes a lazy-deletion item under `side`'s heap, compacting stale
    /// items in place first whenever the heap is at capacity. Live items
    /// are bounded by resident entries, so a preallocated heap (dense
    /// layout) never reallocates — retire of the "amortized allocations"
    /// carve-out noted in DESIGN.md §12.
    fn push_heap(&mut self, side: Side, item: HeapItem) {
        let heap = match side {
            Side::Pc => &mut self.pc_heap,
            Side::Ac => &mut self.ac_heap,
        };
        if heap.len() == heap.capacity() {
            let entries = &self.entries;
            heap.retain(|it| {
                entries
                    .get(it.page)
                    .is_some_and(|e| e.side == side && e.stamp == it.stamp)
            });
        }
        match side {
            Side::Pc => self.pc_heap.push(item),
            Side::Ac => self.ac_heap.push(item),
        }
    }

    /// Pops the minimum live page of `side`. Removes it from the entry map
    /// and byte accounting.
    fn pop_min(&mut self, side: Side) -> Option<(PageId, Entry)> {
        loop {
            let item = match side {
                Side::Pc => self.pc_heap.pop()?,
                Side::Ac => self.ac_heap.pop()?,
            };
            let live = self
                .entries
                .get(item.page)
                .is_some_and(|e| e.side == side && e.stamp == item.stamp);
            if live {
                let entry = self.entries.remove(item.page).expect("live entry");
                match side {
                    Side::Pc => self.used_pc -= entry.size,
                    Side::Ac => self.used_ac -= entry.size,
                }
                return Some((item.page, entry));
            }
        }
    }

    fn candidate_size_below(&self, side: Side, v: f64) -> Bytes {
        self.entries
            .iter()
            .filter(|(_, e)| e.side == side && e.value < v)
            .map(|(_, e)| e.size)
            .sum()
    }

    /// Plans the adaptive relabeling for a page needing `needed` extra PC
    /// bytes. Returns whether it is feasible within the `hi` bound; on
    /// success the victims are left in `self.victims_scratch`.
    ///
    /// The eviction pool `S` is the set of AC pages not referenced since
    /// the last AC replacement, walked in ascending GD\* value.
    fn plan_relabel(&self, needed: Bytes) -> bool {
        let mut stale = self.stale_scratch.borrow_mut();
        stale.clear();
        stale.extend(
            self.entries
                .iter()
                .filter(|(_, e)| {
                    e.side == Side::Ac && e.last_access_tick < self.ac_last_replacement
                })
                .map(|(p, e)| (p, e.value, e.size, e.stamp)),
        );
        stale.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.3.cmp(&b.3))
        });
        let mut victims = self.victims_scratch.borrow_mut();
        victims.clear();
        let hi = self.hi_bytes();
        let mut alloc = self.pc_alloc;
        let mut freed = Bytes::ZERO;
        for &(page, _v, size, _s) in stale.iter() {
            if freed >= needed {
                break;
            }
            if alloc + size > hi {
                // Relabeling this page would violate the PC upper bound
                // (DC-LAP); skip it — a smaller stale page may still fit.
                continue;
            }
            alloc += size;
            freed += size;
            victims.push(page);
        }
        freed >= needed
    }
}

impl<O: Observer> Strategy for DcAdaptive<O> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn class(&self) -> StrategyClass {
        StrategyClass::Combined
    }

    fn on_push(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome {
        evicted.clear();
        self.tick += 1;
        if self.entries.contains(page.page) {
            return PushOutcome::Stored;
        }
        let v = Self::sub_value(page, subs);
        // Phase 1: SUB within the current PC allocation.
        if self.free_pc() >= page.size
            || self.free_pc() + self.candidate_size_below(Side::Pc, v) >= page.size
        {
            if page.size > self.pc_alloc {
                // Even an empty PC cannot hold it; fall through to phase 2.
            } else {
                while self.free_pc() < page.size {
                    let (victim, entry) = self.pop_min(Side::Pc).expect("candidates suffice");
                    if O::ENABLED {
                        self.obs
                            .evict(victim, entry.size, entry.value, EvictReason::Push);
                    }
                    evicted.push(victim);
                }
                self.insert(page, Side::Pc, v, 0);
                if O::ENABLED {
                    self.obs.admit(page.page, page.size, v, AdmitOrigin::Push);
                }
                return PushOutcome::Stored;
            }
        }
        // Phase 2: adaptive re-partition over stale AC pages.
        let needed = page.size.saturating_sub(self.free_pc());
        if self.plan_relabel(needed) {
            // Take the planned victims out of the scratch so `self` stays
            // mutably borrowable; restore it after (capacity preserved).
            let victims = std::mem::take(&mut *self.victims_scratch.borrow_mut());
            for &victim in &victims {
                let entry = self.entries.remove(victim).expect("planned victim");
                self.used_ac -= entry.size;
                self.pc_alloc += entry.size;
                if O::ENABLED {
                    // The stale page dies and its storage switches
                    // sides: one eviction, one relabel.
                    self.obs
                        .evict(victim, entry.size, entry.value, EvictReason::Repartition);
                    self.obs
                        .relabel(victim, entry.size, RelabelDirection::AcToPc);
                }
                evicted.push(victim);
            }
            *self.victims_scratch.borrow_mut() = victims;
            debug_assert!(self.free_pc() >= page.size);
            self.insert(page, Side::Pc, v, 0);
            if O::ENABLED {
                self.obs.admit(page.page, page.size, v, AdmitOrigin::Push);
            }
            PushOutcome::Stored
        } else {
            PushOutcome::Declined
        }
    }

    fn would_store(&self, page: &PageRef, subs: u32) -> bool {
        if self.entries.contains(page.page) {
            return true;
        }
        if page.size > self.capacity {
            return false;
        }
        let v = Self::sub_value(page, subs);
        let sub_fits = page.size <= self.pc_alloc
            && self.free_pc() + self.candidate_size_below(Side::Pc, v) >= page.size;
        if sub_fits {
            return true;
        }
        let needed = page.size.saturating_sub(self.free_pc());
        self.plan_relabel(needed)
    }

    fn on_access(
        &mut self,
        page: &PageRef,
        _subs: u32,
        evicted: &mut Vec<PageId>,
    ) -> AccessOutcome {
        evicted.clear();
        self.tick += 1;
        if let Some(entry) = self.entries.get(page.page).copied() {
            debug_assert_eq!(
                entry.size, page.size,
                "a page's size must be stable across calls"
            );
            match entry.side {
                Side::Pc => {
                    // Locating: relabel the storage AC in place when the
                    // bounds allow; otherwise fall back to a DC-FP move.
                    let new_pc = self.pc_alloc.saturating_sub(entry.size);
                    if new_pc >= self.lo_bytes() {
                        self.pc_alloc = new_pc;
                        self.used_pc -= entry.size;
                        // Re-insert under the new side (the stale PC heap
                        // item is skimmed by stamp on a later pop).
                        self.entries.remove(page.page);
                        let value = self.gd_value(1, page);
                        self.insert(page, Side::Ac, value, 1);
                        if O::ENABLED {
                            self.obs
                                .relabel(page.page, entry.size, RelabelDirection::PcToAc);
                        }
                    } else {
                        // Remove from PC and run a GD* placement in AC.
                        self.used_pc -= entry.size;
                        self.entries.remove(page.page);
                        if O::ENABLED {
                            // Even the bounded fallback moves the page
                            // across the partition.
                            self.obs
                                .relabel(page.page, entry.size, RelabelDirection::PcToAc);
                        }
                        if entry.size <= self.ac_allocation() {
                            while self.free_ac() < entry.size {
                                let (victim_page, victim) =
                                    self.pop_min(Side::Ac).expect("AC not empty");
                                self.inflation = victim.value;
                                self.ac_last_replacement = self.tick;
                                if O::ENABLED {
                                    self.obs.evict(
                                        victim_page,
                                        victim.size,
                                        victim.value,
                                        EvictReason::Access,
                                    );
                                }
                            }
                            let value = self.gd_value(1, page);
                            self.insert(page, Side::Ac, value, 1);
                        }
                        // else: page cannot fit in AC at all; it is served
                        // but dropped from the cache.
                    }
                    AccessOutcome::Hit
                }
                Side::Ac => {
                    let freq = entry.freq + 1;
                    let value = self.gd_value(freq, page);
                    let stamp = self.stamp();
                    let e = self.entries.get_mut(page.page).expect("present");
                    e.freq = freq;
                    e.value = value;
                    e.stamp = stamp;
                    e.last_access_tick = self.tick;
                    self.push_heap(
                        Side::Ac,
                        HeapItem {
                            value,
                            stamp,
                            page: page.page,
                        },
                    );
                    AccessOutcome::Hit
                }
            }
        } else {
            // Miss: classic GD* placement within the AC allocation.
            if page.size > self.ac_allocation() {
                return AccessOutcome::MissBypassed;
            }
            while self.free_ac() < page.size {
                let (victim, entry) = self.pop_min(Side::Ac).expect("AC holds enough bytes");
                self.inflation = entry.value;
                self.ac_last_replacement = self.tick;
                if O::ENABLED {
                    self.obs
                        .evict(victim, entry.size, entry.value, EvictReason::Access);
                }
                evicted.push(victim);
            }
            let value = self.gd_value(1, page);
            self.insert(page, Side::Ac, value, 1);
            if O::ENABLED {
                self.obs
                    .admit(page.page, page.size, value, AdmitOrigin::Access);
            }
            AccessOutcome::MissAdmitted
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.entries.contains(page)
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        match self.entries.remove(page) {
            Some(entry) => {
                match entry.side {
                    Side::Pc => self.used_pc -= entry.size,
                    Side::Ac => self.used_ac -= entry.size,
                }
                if O::ENABLED {
                    self.obs
                        .evict(page, entry.size, entry.value, EvictReason::Invalidate);
                }
                true
            }
            None => false,
        }
    }

    fn capacity(&self) -> Bytes {
        self.capacity
    }

    fn used(&self) -> Bytes {
        self.used_pc + self.used_ac
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u32, size: u64, cost: f64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), cost)
    }

    #[test]
    fn starts_half_and_half() {
        let d = DcAdaptive::ap(Bytes::new(100), 2.0);
        assert_eq!(d.pc_allocation(), Bytes::new(50));
        assert_eq!(d.ac_allocation(), Bytes::new(50));
        assert_eq!(d.capacity(), Bytes::new(100));
        assert_eq!(d.name(), "DC-AP");
        assert_eq!(DcAdaptive::lap(Bytes::new(100), 2.0).name(), "DC-LAP");
    }

    #[test]
    fn sub_placement_within_pc() {
        let mut ev = Vec::new();
        let mut d = DcAdaptive::ap(Bytes::new(100), 2.0);
        assert!(d.on_push(&page(1, 50, 1.0), 5, &mut ev).is_stored());
        // PC full; low-value push declined (no stale AC pages to take).
        assert_eq!(
            d.on_push(&page(2, 50, 1.0), 1, &mut ev),
            PushOutcome::Declined
        );
        // Higher-value push displaces within PC.
        let out = d.on_push(&page(3, 50, 1.0), 50, &mut ev);
        assert_eq!(out, PushOutcome::Stored);
        assert_eq!(ev, vec![PageId::new(1)]);
        assert_eq!(d.pc_allocation(), Bytes::new(50));
    }

    #[test]
    fn access_relabels_pc_storage_to_ac() {
        let mut ev = Vec::new();
        let mut d = DcAdaptive::ap(Bytes::new(100), 2.0);
        let p = page(1, 30, 1.0);
        d.on_push(&p, 5, &mut ev);
        assert_eq!(d.used(), Bytes::new(30));
        assert_eq!(d.on_access(&p, 5, &mut ev), AccessOutcome::Hit);
        // Storage followed the page: PC shrank, AC grew, nothing was evicted.
        assert_eq!(d.pc_allocation(), Bytes::new(20));
        assert_eq!(d.ac_allocation(), Bytes::new(80));
        assert_eq!(d.len(), 1);
        // Second access: plain AC hit.
        assert_eq!(d.on_access(&p, 5, &mut ev), AccessOutcome::Hit);
    }

    #[test]
    fn relabel_avoids_spurious_ac_replacement() {
        let mut ev = Vec::new();
        let mut d = DcAdaptive::ap(Bytes::new(100), 2.0);
        // Fill AC (50 bytes) with misses.
        d.on_access(&page(1, 25, 1.0), 0, &mut ev);
        d.on_access(&page(2, 25, 1.0), 0, &mut ev);
        // Push and access a PC page: with DC-FP this would evict from AC;
        // DC-AP relabels instead and keeps all three pages.
        d.on_push(&page(3, 40, 1.0), 9, &mut ev);
        assert_eq!(
            d.on_access(&page(3, 40, 1.0), 9, &mut ev),
            AccessOutcome::Hit
        );
        assert_eq!(d.len(), 3);
        assert_eq!(d.ac_allocation(), Bytes::new(90));
    }

    #[test]
    fn failed_push_takes_stale_ac_storage() {
        let mut ev = Vec::new();
        let mut d = DcAdaptive::ap(Bytes::new(100), 1.0);
        // AC pages via misses: p1 hot (two accesses), p2 cold, p3 medium.
        d.on_access(&page(1, 20, 1.0), 0, &mut ev);
        d.on_access(&page(1, 20, 1.0), 0, &mut ev); // value 2/20 = 0.1
        d.on_access(&page(2, 20, 1.0), 0, &mut ev); // value 0.05
        d.on_access(&page(3, 10, 1.0), 0, &mut ev); // value 0.1
                                                    // No AC replacement has happened yet -> no stale pages -> a push
                                                    // too large for the whole PC allocation is declined.
        assert_eq!(
            d.on_push(&page(5, 60, 1.0), 9, &mut ev),
            PushOutcome::Declined
        );
        // A 10-byte miss forces an AC replacement (AC is full at 50):
        // the cold p2 is evicted and the replacement tick advances.
        assert_eq!(
            d.on_access(&page(6, 10, 1.0), 0, &mut ev),
            AccessOutcome::MissAdmitted
        );
        assert_eq!(ev, vec![PageId::new(2)]);
        // p1 and p3 now predate the last AC replacement -> stale. A push
        // needing 5 bytes beyond the free PC can relabel their storage.
        let before_pc = d.pc_allocation();
        let out = d.on_push(&page(7, 55, 2.0), 9, &mut ev);
        assert!(out.is_stored(), "adaptive relabel should admit: {out:?}");
        assert!(d.pc_allocation() > before_pc);
        assert_eq!(d.pc_allocation(), Bytes::new(70)); // took p1's 20 bytes
        assert!(!d.contains(PageId::new(1)));
    }

    #[test]
    fn lap_bounds_limit_relabel() {
        // DC-LAP with bounds [0.25, 0.75] of 100 bytes: PC in [25, 75].
        let mut ev = Vec::new();
        let mut d = DcAdaptive::lap(Bytes::new(100), 2.0);
        // One 30-byte PC page; accessing it would shrink PC to 20 < 25:
        // bounds forbid the relabel, so the page *moves* (DC-FP style).
        d.on_push(&page(1, 30, 1.0), 5, &mut ev);
        assert_eq!(
            d.on_access(&page(1, 30, 1.0), 5, &mut ev),
            AccessOutcome::Hit
        );
        assert_eq!(d.pc_allocation(), Bytes::new(50)); // unchanged
        assert!(d.contains(PageId::new(1))); // moved into AC
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn miss_replacement_confined_to_ac() {
        let mut ev = Vec::new();
        let mut d = DcAdaptive::ap(Bytes::new(100), 2.0);
        d.on_push(&page(1, 50, 1.0), 100, &mut ev); // PC full, high value
                                                    // Misses cycle through AC (50 bytes) without touching the PC page.
        for i in 2..8 {
            d.on_access(&page(i, 30, 1.0), 0, &mut ev);
        }
        assert!(d.contains(PageId::new(1)));
        // AC larger than allocation is bypassed.
        assert_eq!(
            d.on_access(&page(99, 60, 1.0), 0, &mut ev),
            AccessOutcome::MissBypassed
        );
    }

    #[test]
    fn would_store_matches_on_push() {
        let mut ev = Vec::new();
        let mut d = DcAdaptive::lap(Bytes::new(100), 2.0);
        let pushes = [
            (page(1, 40, 1.0), 10u32),
            (page(2, 30, 1.0), 2),
            (page(3, 30, 1.0), 50),
            (page(4, 80, 1.0), 90),
            (page(5, 10, 1.0), 0),
        ];
        for (p, subs) in pushes {
            assert_eq!(
                d.would_store(&p, subs),
                d.on_push(&p, subs, &mut ev).is_stored(),
                "page {:?}",
                p.page
            );
        }
    }

    #[test]
    fn accounting_invariants_hold_under_churn() {
        let mut ev = Vec::new();
        let mut d = DcAdaptive::lap(Bytes::new(200), 2.0);
        for i in 0..200u32 {
            let id = i % 37;
            // Size and cost are functions of the page id: a page's
            // PageRef must be stable across calls.
            let p = page(id, 10 + (id as u64 % 5) * 13, 1.0 + (id % 3) as f64);
            if i % 3 == 0 {
                d.on_push(&p, i % 11, &mut ev);
            } else {
                d.on_access(&p, i % 7, &mut ev);
            }
            assert!(d.used() <= d.capacity(), "over capacity at step {i}");
            assert!(d.pc_allocation() <= d.capacity());
            let lo = d.capacity().scaled(0.25);
            let hi = d.capacity().scaled(0.75);
            assert!(
                d.pc_allocation() >= lo && d.pc_allocation() <= hi,
                "LAP bounds violated at step {i}: {}",
                d.pc_allocation()
            );
        }
    }

    #[test]
    fn dense_layout_matches_sparse() {
        let mut ev_s = Vec::new();
        let mut ev_d = Vec::new();
        let layouts = Layout::Dense { page_count: 37 };
        let mut pairs = [
            (
                DcAdaptive::ap(Bytes::new(200), 2.0),
                DcAdaptive::ap_with_layout(Bytes::new(200), 2.0, layouts, ObsHandle::disabled()),
            ),
            (
                DcAdaptive::lap(Bytes::new(200), 2.0),
                DcAdaptive::lap_with_bounds_layout(
                    Bytes::new(200),
                    2.0,
                    0.25,
                    0.75,
                    layouts,
                    ObsHandle::disabled(),
                ),
            ),
        ];
        let mut x = 0xfeed_f00du64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..3_000u32 {
            let id = (rng() % 37) as u32;
            // Size and cost are functions of the page id (stable PageRef).
            let p = page(id, 10 + (id as u64 % 5) * 13, 1.0 + (id % 3) as f64);
            let subs = (rng() % 15) as u32;
            let op = rng() % 5;
            for (sparse, dense) in &mut pairs {
                match op {
                    0 | 1 => assert_eq!(
                        sparse.on_push(&p, subs, &mut ev_s),
                        dense.on_push(&p, subs, &mut ev_d),
                        "{} push diverged at step {i}",
                        sparse.name()
                    ),
                    2 => assert_eq!(sparse.invalidate(p.page), dense.invalidate(p.page)),
                    _ => assert_eq!(
                        sparse.on_access(&p, subs, &mut ev_s),
                        dense.on_access(&p, subs, &mut ev_d),
                        "{} access diverged at step {i}",
                        sparse.name()
                    ),
                }
                assert_eq!(ev_s, ev_d, "evictions diverged at step {i}");
                assert_eq!(sparse.used(), dense.used());
                assert_eq!(sparse.pc_allocation(), dense.pc_allocation());
            }
        }
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn rejects_bad_bounds() {
        let _ = DcAdaptive::lap_with_bounds(Bytes::new(10), 2.0, 0.8, 0.9);
    }
}
