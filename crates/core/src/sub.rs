//! SUB: push-time-only placement driven by subscription matching (§3.2).

use pscd_cache::{AccessOutcome, GreedyDualEngine, Layout, PageRef};
use pscd_obs::{NullObserver, ObsHandle, Observer};
use pscd_types::{Bytes, PageId};

use crate::{PushOutcome, Strategy, StrategyClass};

/// The paper's pure pushing strategy:
///
/// ```text
/// V(p) = f_S(p) · c(p) / s(p)                    (eq. 2)
/// ```
///
/// where `f_S(p)` is the number of subscriptions matching `p` at this
/// proxy. A pushed page is stored only if the cache has room after evicting
/// strictly-less-valuable pages; on a cache miss the requested page is
/// forwarded to the user **without** being cached (push-time is the only
/// placement opportunity).
///
/// # Examples
///
/// ```
/// use pscd_core::{Strategy, Sub};
/// use pscd_cache::PageRef;
/// use pscd_types::{Bytes, PageId};
///
/// let mut sub = Sub::new(Bytes::from_kib(4));
/// let mut evicted = Vec::new();
/// let page = PageRef::new(PageId::new(0), Bytes::new(512), 1.0);
/// assert!(sub.on_push(&page, 3, &mut evicted).is_stored());
/// assert!(sub.on_access(&page, 3, &mut evicted).is_hit());
/// ```
#[derive(Debug)]
pub struct Sub<O: Observer = NullObserver> {
    engine: GreedyDualEngine<O>,
}

impl Sub {
    /// Creates a SUB proxy cache with the given capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self::with_observer(capacity, ObsHandle::disabled())
    }
}

impl<O: Observer> Sub<O> {
    /// Creates a SUB proxy cache reporting cache decisions to `obs`.
    pub fn with_observer(capacity: Bytes, obs: ObsHandle<O>) -> Self {
        Self::with_layout(capacity, Layout::Sparse, obs)
    }

    /// Creates a SUB proxy cache with an explicit state [`Layout`].
    pub fn with_layout(capacity: Bytes, layout: Layout, obs: ObsHandle<O>) -> Self {
        Self {
            engine: GreedyDualEngine::with_layout(capacity, layout, obs),
        }
    }

    /// Eq. 2: the subscription-based page value.
    fn value(page: &PageRef, subs: u32) -> f64 {
        subs as f64 * page.cost / page.size.as_f64()
    }

    /// Serializes the cache's mutable state for a snapshot.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        self.engine.encode_state(out);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        &mut self,
        r: &mut pscd_cache::SnapshotReader<'_>,
    ) -> Result<(), pscd_cache::SnapshotError> {
        self.engine.decode_state(r)
    }
}

impl<O: Observer> Strategy for Sub<O> {
    fn name(&self) -> &'static str {
        "SUB"
    }

    fn class(&self) -> StrategyClass {
        StrategyClass::PushTime
    }

    fn on_push(&mut self, page: &PageRef, subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome {
        if self
            .engine
            .push_valued(page, Self::value(page, subs), evicted)
        {
            PushOutcome::Stored
        } else {
            PushOutcome::Declined
        }
    }

    fn would_store(&self, page: &PageRef, subs: u32) -> bool {
        let store = self.engine.store();
        if store.contains(page.page) {
            return true;
        }
        if page.size > store.capacity() {
            return false;
        }
        store.free() + store.candidate_size_below(Self::value(page, subs)) >= page.size
    }

    fn on_access(
        &mut self,
        page: &PageRef,
        _subs: u32,
        evicted: &mut Vec<PageId>,
    ) -> AccessOutcome {
        evicted.clear();
        if self.engine.store().contains(page.page) {
            AccessOutcome::Hit
        } else {
            // Push-time-only: fetch, forward, never cache on access.
            AccessOutcome::MissBypassed
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.engine.store().contains(page)
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.engine.evict(page)
    }

    fn capacity(&self) -> Bytes {
        self.engine.store().capacity()
    }

    fn used(&self) -> Bytes {
        self.engine.store().used()
    }

    fn len(&self) -> usize {
        self.engine.store().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u32, size: u64, cost: f64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), cost)
    }

    #[test]
    fn stores_by_subscription_value() {
        let mut ev = Vec::new();
        let mut sub = Sub::new(Bytes::new(20));
        // Two pages fill the cache; values 10*1/10 = 1.0 and 2.0.
        assert!(sub.on_push(&page(1, 10, 1.0), 10, &mut ev).is_stored());
        assert!(sub.on_push(&page(2, 10, 1.0), 20, &mut ev).is_stored());
        // Low-value page declined.
        assert_eq!(
            sub.on_push(&page(3, 10, 1.0), 5, &mut ev),
            PushOutcome::Declined
        );
        assert!(!sub.contains(PageId::new(3)));
        // High-value page evicts the weakest.
        let out = sub.on_push(&page(4, 10, 1.0), 30, &mut ev);
        assert_eq!(out, PushOutcome::Stored);
        assert_eq!(ev, vec![PageId::new(1)]);
    }

    #[test]
    fn declines_when_candidates_too_small() {
        let mut ev = Vec::new();
        let mut sub = Sub::new(Bytes::new(30));
        sub.on_push(&page(1, 10, 1.0), 10, &mut ev); // v = 1.0
        sub.on_push(&page(2, 20, 1.0), 40, &mut ev); // v = 2.0
                                                     // New 20-byte page worth 1.5: only page 1 (10 bytes) is a weaker
                                                     // candidate -> total candidate size 10 < 20 -> declined (§3.2).
        assert_eq!(
            sub.on_push(&page(3, 20, 1.0), 30, &mut ev),
            PushOutcome::Declined
        );
        assert!(!sub.would_store(&page(3, 20, 1.0), 30));
        assert!(sub.would_store(&page(4, 10, 1.0), 20));
    }

    #[test]
    fn misses_never_cache() {
        let mut ev = Vec::new();
        let mut sub = Sub::new(Bytes::new(100));
        let p = page(1, 10, 1.0);
        assert_eq!(sub.on_access(&p, 50, &mut ev), AccessOutcome::MissBypassed);
        assert_eq!(sub.on_access(&p, 50, &mut ev), AccessOutcome::MissBypassed);
        assert!(sub.is_empty());
    }

    #[test]
    fn hits_on_pushed_pages() {
        let mut ev = Vec::new();
        let mut sub = Sub::new(Bytes::new(100));
        let p = page(1, 10, 1.0);
        sub.on_push(&p, 2, &mut ev);
        assert_eq!(sub.on_access(&p, 2, &mut ev), AccessOutcome::Hit);
        assert_eq!(sub.used(), Bytes::new(10));
        assert_eq!(sub.capacity(), Bytes::new(100));
        assert_eq!(sub.name(), "SUB");
        assert_eq!(sub.class(), StrategyClass::PushTime);
        assert!(sub.uses_push());
    }

    #[test]
    fn would_store_matches_on_push() {
        let mut ev = Vec::new();
        let mut sub = Sub::new(Bytes::new(20));
        let cases = [
            (page(1, 10, 1.0), 10u32),
            (page(2, 10, 1.0), 5),
            (page(3, 10, 1.0), 1),
            (page(4, 15, 1.0), 30),
            (page(5, 25, 1.0), 99),
        ];
        for (p, subs) in cases {
            let predicted = sub.would_store(&p, subs);
            let actual = sub.on_push(&p, subs, &mut ev).is_stored();
            assert_eq!(predicted, actual, "page {:?} subs {subs}", p.page);
        }
    }

    #[test]
    fn zero_subscriptions_zero_value() {
        let mut ev = Vec::new();
        let mut sub = Sub::new(Bytes::new(10));
        // Empty cache: free space admits even a zero-value page.
        assert!(sub.on_push(&page(1, 10, 1.0), 0, &mut ev).is_stored());
        // Another zero-value page cannot displace it (not strictly less).
        assert_eq!(
            sub.on_push(&page(2, 10, 1.0), 0, &mut ev),
            PushOutcome::Declined
        );
    }

    #[test]
    fn dense_layout_matches_sparse() {
        let mut ev_s = Vec::new();
        let mut ev_d = Vec::new();
        let mut sparse = Sub::new(Bytes::new(40));
        let mut dense = Sub::with_layout(
            Bytes::new(40),
            Layout::Dense { page_count: 24 },
            ObsHandle::disabled(),
        );
        let mut x = 0x1234_5678u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2_000 {
            let p = page((rng() % 24) as u32, rng() % 15 + 1, (rng() % 5 + 1) as f64);
            let subs = (rng() % 40) as u32;
            if rng() % 3 == 0 {
                assert_eq!(
                    sparse.on_access(&p, subs, &mut ev_s),
                    dense.on_access(&p, subs, &mut ev_d)
                );
            } else {
                assert_eq!(
                    sparse.on_push(&p, subs, &mut ev_s),
                    dense.on_push(&p, subs, &mut ev_d)
                );
            }
            assert_eq!(ev_s, ev_d);
            assert_eq!(sparse.used(), dense.used());
        }
    }
}
