//! SUB: push-time-only placement driven by subscription matching (§3.2).

use pscd_cache::{AccessOutcome, GreedyDualEngine, PageRef};
use pscd_obs::{NullObserver, ObsHandle, Observer};
use pscd_types::{Bytes, PageId};

use crate::{PushOutcome, Strategy, StrategyClass};

/// The paper's pure pushing strategy:
///
/// ```text
/// V(p) = f_S(p) · c(p) / s(p)                    (eq. 2)
/// ```
///
/// where `f_S(p)` is the number of subscriptions matching `p` at this
/// proxy. A pushed page is stored only if the cache has room after evicting
/// strictly-less-valuable pages; on a cache miss the requested page is
/// forwarded to the user **without** being cached (push-time is the only
/// placement opportunity).
///
/// # Examples
///
/// ```
/// use pscd_core::{Strategy, Sub};
/// use pscd_cache::PageRef;
/// use pscd_types::{Bytes, PageId};
///
/// let mut sub = Sub::new(Bytes::from_kib(4));
/// let page = PageRef::new(PageId::new(0), Bytes::new(512), 1.0);
/// assert!(sub.on_push(&page, 3).is_stored());
/// assert!(sub.on_access(&page, 3).is_hit());
/// ```
#[derive(Debug)]
pub struct Sub<O: Observer = NullObserver> {
    engine: GreedyDualEngine<O>,
}

impl Sub {
    /// Creates a SUB proxy cache with the given capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self::with_observer(capacity, ObsHandle::disabled())
    }
}

impl<O: Observer> Sub<O> {
    /// Creates a SUB proxy cache reporting cache decisions to `obs`.
    pub fn with_observer(capacity: Bytes, obs: ObsHandle<O>) -> Self {
        Self {
            engine: GreedyDualEngine::with_observer(capacity, obs),
        }
    }

    /// Eq. 2: the subscription-based page value.
    fn value(page: &PageRef, subs: u32) -> f64 {
        subs as f64 * page.cost / page.size.as_f64()
    }
}

impl<O: Observer> Strategy for Sub<O> {
    fn name(&self) -> &'static str {
        "SUB"
    }

    fn class(&self) -> StrategyClass {
        StrategyClass::PushTime
    }

    fn on_push(&mut self, page: &PageRef, subs: u32) -> PushOutcome {
        match self.engine.push_valued(page, Self::value(page, subs)) {
            Some(evicted) => PushOutcome::Stored { evicted },
            None => PushOutcome::Declined,
        }
    }

    fn would_store(&self, page: &PageRef, subs: u32) -> bool {
        let store = self.engine.store();
        if store.contains(page.page) {
            return true;
        }
        if page.size > store.capacity() {
            return false;
        }
        store.free() + store.candidate_size_below(Self::value(page, subs)) >= page.size
    }

    fn on_access(&mut self, page: &PageRef, _subs: u32) -> AccessOutcome {
        if self.engine.store().contains(page.page) {
            AccessOutcome::Hit
        } else {
            // Push-time-only: fetch, forward, never cache on access.
            AccessOutcome::MissBypassed
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.engine.store().contains(page)
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.engine.evict(page)
    }

    fn capacity(&self) -> Bytes {
        self.engine.store().capacity()
    }

    fn used(&self) -> Bytes {
        self.engine.store().used()
    }

    fn len(&self) -> usize {
        self.engine.store().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u32, size: u64, cost: f64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), cost)
    }

    #[test]
    fn stores_by_subscription_value() {
        let mut sub = Sub::new(Bytes::new(20));
        // Two pages fill the cache; values 10*1/10 = 1.0 and 2.0.
        assert!(sub.on_push(&page(1, 10, 1.0), 10).is_stored());
        assert!(sub.on_push(&page(2, 10, 1.0), 20).is_stored());
        // Low-value page declined.
        assert_eq!(sub.on_push(&page(3, 10, 1.0), 5), PushOutcome::Declined);
        assert!(!sub.contains(PageId::new(3)));
        // High-value page evicts the weakest.
        let out = sub.on_push(&page(4, 10, 1.0), 30);
        assert_eq!(
            out,
            PushOutcome::Stored {
                evicted: vec![PageId::new(1)]
            }
        );
    }

    #[test]
    fn declines_when_candidates_too_small() {
        let mut sub = Sub::new(Bytes::new(30));
        sub.on_push(&page(1, 10, 1.0), 10); // v = 1.0
        sub.on_push(&page(2, 20, 1.0), 40); // v = 2.0
                                            // New 20-byte page worth 1.5: only page 1 (10 bytes) is a weaker
                                            // candidate -> total candidate size 10 < 20 -> declined (§3.2).
        assert_eq!(sub.on_push(&page(3, 20, 1.0), 30), PushOutcome::Declined);
        assert!(!sub.would_store(&page(3, 20, 1.0), 30));
        assert!(sub.would_store(&page(4, 10, 1.0), 20));
    }

    #[test]
    fn misses_never_cache() {
        let mut sub = Sub::new(Bytes::new(100));
        let p = page(1, 10, 1.0);
        assert_eq!(sub.on_access(&p, 50), AccessOutcome::MissBypassed);
        assert_eq!(sub.on_access(&p, 50), AccessOutcome::MissBypassed);
        assert!(sub.is_empty());
    }

    #[test]
    fn hits_on_pushed_pages() {
        let mut sub = Sub::new(Bytes::new(100));
        let p = page(1, 10, 1.0);
        sub.on_push(&p, 2);
        assert_eq!(sub.on_access(&p, 2), AccessOutcome::Hit);
        assert_eq!(sub.used(), Bytes::new(10));
        assert_eq!(sub.capacity(), Bytes::new(100));
        assert_eq!(sub.name(), "SUB");
        assert_eq!(sub.class(), StrategyClass::PushTime);
        assert!(sub.uses_push());
    }

    #[test]
    fn would_store_matches_on_push() {
        let mut sub = Sub::new(Bytes::new(20));
        let cases = [
            (page(1, 10, 1.0), 10u32),
            (page(2, 10, 1.0), 5),
            (page(3, 10, 1.0), 1),
            (page(4, 15, 1.0), 30),
            (page(5, 25, 1.0), 99),
        ];
        for (p, subs) in cases {
            let predicted = sub.would_store(&p, subs);
            let actual = sub.on_push(&p, subs).is_stored();
            assert_eq!(predicted, actual, "page {:?} subs {subs}", p.page);
        }
    }

    #[test]
    fn zero_subscriptions_zero_value() {
        let mut sub = Sub::new(Bytes::new(10));
        assert!(sub.on_push(&page(1, 10, 1.0), 0).is_stored()); // empty cache: free space
                                                                // Another zero-value page cannot displace it (not strictly less).
        assert_eq!(sub.on_push(&page(2, 10, 1.0), 0), PushOutcome::Declined);
    }
}
