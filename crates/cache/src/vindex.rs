//! A value-ordered byte-prefix index: the sublinear structure behind
//! [`CacheStore::candidate_size_below`](crate::CacheStore::candidate_size_below).
//!
//! Push-time placement (paper §3.2) asks, at *every* admission attempt at
//! every matched proxy, "how many bytes do the pages worth less than this
//! one occupy?" — a strict-prefix sum over the store's value order. The
//! store's lazy-deletion heap cannot answer that, and a linear scan made
//! the question `O(n)` per publish × proxy. This index keeps every live
//! `(value, stamp)` entry in a randomized search tree (a treap keyed by
//! value then stamp, with priorities derived from the stamp) where each
//! node carries its subtree's byte total, so the prefix sum is one
//! root-to-leaf walk: `O(log n)` expected.
//!
//! The float order needs one precaution: the tree is ordered by
//! [`f64::total_cmp`] (stamps break exact ties), but the query uses IEEE
//! `<` — and the two disagree on `-0.0` vs `+0.0`. Normalizing `-0.0` to
//! `+0.0` on entry makes the orders agree on every value the store admits
//! (NaN is rejected at the [`CacheStore`](crate::CacheStore) boundary),
//! so the answer is bit-identical to the scan it replaces.

/// Sentinel child index: no node.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Entry value, normalized (`-0.0` stored as `+0.0`).
    value: f64,
    /// The store's stamp for this entry — unique, so keys never collide.
    stamp: u64,
    /// Entry size in bytes.
    size: u64,
    /// Byte total of this node's subtree.
    sum: u64,
    /// Treap heap priority (hashed from the stamp: deterministic).
    prio: u64,
    left: u32,
    right: u32,
}

/// The byte-prefix index over a store's live `(value, stamp, size)`
/// entries. Every mutation of [`CacheStore`](crate::CacheStore)'s entry
/// map mirrors into this structure — an entry is inserted exactly when it
/// becomes live and removed exactly when its stamp dies, so there is no
/// lazy deletion to skim.
#[derive(Debug, Clone)]
pub(crate) struct ValueIndex {
    nodes: Vec<Node>,
    /// Recyclable slots in `nodes`.
    free: Vec<u32>,
    root: u32,
}

impl Default for ValueIndex {
    fn default() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }
}

/// `-0.0` → `+0.0` so `total_cmp` order and IEEE `<` agree (see module
/// docs). NaN never reaches the index.
#[inline]
fn normalize(value: f64) -> f64 {
    if value == 0.0 {
        0.0
    } else {
        value
    }
}

/// splitmix64: spreads the sequential stamps into uniform treap
/// priorities, keeping the tree balanced in expectation without any RNG
/// state (and therefore fully deterministic).
#[inline]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ValueIndex {
    /// Number of live entries.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Byte total of the whole index.
    #[cfg(test)]
    fn total(&self) -> u64 {
        self.subtree_sum(self.root)
    }

    #[inline]
    fn subtree_sum(&self, t: u32) -> u64 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].sum
        }
    }

    #[inline]
    fn pull_up(&mut self, t: u32) {
        let (l, r) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right)
        };
        let sum = self.subtree_sum(l) + self.subtree_sum(r) + self.nodes[t as usize].size;
        self.nodes[t as usize].sum = sum;
    }

    /// `(value, stamp)` key order: value by `total_cmp`, ties by stamp.
    #[inline]
    fn key_less(&self, a: u32, value: f64, stamp: u64) -> bool {
        let n = &self.nodes[a as usize];
        match n.value.total_cmp(&value) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => n.stamp < stamp,
            std::cmp::Ordering::Greater => false,
        }
    }

    fn alloc(&mut self, value: f64, stamp: u64, size: u64) -> u32 {
        let node = Node {
            value,
            stamp,
            size,
            sum: size,
            prio: splitmix64(stamp),
            left: NIL,
            right: NIL,
        };
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Splits subtree `t` into `(keys < (value, stamp), keys >= ...)`.
    fn split(&mut self, t: u32, value: f64, stamp: u64) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.key_less(t, value, stamp) {
            let right = self.nodes[t as usize].right;
            let (l, r) = self.split(right, value, stamp);
            self.nodes[t as usize].right = l;
            self.pull_up(t);
            (t, r)
        } else {
            let left = self.nodes[t as usize].left;
            let (l, r) = self.split(left, value, stamp);
            self.nodes[t as usize].left = r;
            self.pull_up(t);
            (l, t)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let right = self.nodes[a as usize].right;
            let merged = self.merge(right, b);
            self.nodes[a as usize].right = merged;
            self.pull_up(a);
            a
        } else {
            let left = self.nodes[b as usize].left;
            let merged = self.merge(a, left);
            self.nodes[b as usize].left = merged;
            self.pull_up(b);
            b
        }
    }

    /// Records a live entry. `stamp` must be unique among live entries
    /// (the store's stamps are globally unique).
    pub(crate) fn insert(&mut self, value: f64, stamp: u64, size: u64) {
        let value = normalize(value);
        let id = self.alloc(value, stamp, size);
        let (l, r) = self.split(self.root, value, stamp);
        let lid = self.merge(l, id);
        self.root = self.merge(lid, r);
    }

    /// Drops a live entry by its exact `(value, stamp)` key. The entry
    /// must be present — the store only removes what it inserted.
    pub(crate) fn remove(&mut self, value: f64, stamp: u64) {
        let value = normalize(value);
        self.root = self.remove_at(self.root, value, stamp);
    }

    fn remove_at(&mut self, t: u32, value: f64, stamp: u64) -> u32 {
        debug_assert_ne!(t, NIL, "removing an entry the index never saw");
        if t == NIL {
            return NIL;
        }
        let n = &self.nodes[t as usize];
        if n.value == value && n.stamp == stamp {
            let (l, r) = (n.left, n.right);
            self.free.push(t);
            return self.merge(l, r);
        }
        if self.key_less(t, value, stamp) {
            let right = self.nodes[t as usize].right;
            let sub = self.remove_at(right, value, stamp);
            self.nodes[t as usize].right = sub;
        } else {
            let left = self.nodes[t as usize].left;
            let sub = self.remove_at(left, value, stamp);
            self.nodes[t as usize].left = sub;
        }
        self.pull_up(t);
        t
    }

    /// Total bytes of entries whose value is strictly below `value` under
    /// IEEE `<` — exactly what the linear scan computed. One descent,
    /// `O(log n)` expected.
    pub(crate) fn sum_below(&self, value: f64) -> u64 {
        let mut acc = 0u64;
        let mut t = self.root;
        while t != NIL {
            let n = &self.nodes[t as usize];
            if n.value < value {
                // This node and its whole left subtree qualify.
                acc += self.subtree_sum(n.left) + n.size;
                t = n.right;
            } else {
                t = n.left;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: the scan the index replaces.
    #[derive(Default)]
    struct Naive {
        entries: Vec<(f64, u64, u64)>,
    }

    impl Naive {
        fn insert(&mut self, value: f64, stamp: u64, size: u64) {
            self.entries.push((value, stamp, size));
        }
        fn remove(&mut self, value: f64, stamp: u64) {
            let at = self
                .entries
                .iter()
                .position(|&(v, s, _)| v.to_bits() == value.to_bits() && s == stamp)
                .expect("present");
            self.entries.swap_remove(at);
        }
        fn sum_below(&self, value: f64) -> u64 {
            self.entries
                .iter()
                .filter(|&&(v, _, _)| v < value)
                .map(|&(_, _, sz)| sz)
                .sum()
        }
    }

    #[test]
    fn prefix_sums_match_the_scan() {
        let mut idx = ValueIndex::default();
        let mut naive = Naive::default();
        // Deterministic pseudo-random mutation stream.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut live: Vec<(f64, u64, u64)> = Vec::new();
        let mut stamp = 0u64;
        for _ in 0..2_000 {
            let r = rng();
            if live.len() < 8 || r % 3 != 0 {
                // Coarse values force ties; sizes stay small.
                let value = ((rng() % 32) as f64) / 4.0;
                let size = rng() % 100 + 1;
                idx.insert(value, stamp, size);
                naive.insert(value, stamp, size);
                live.push((value, stamp, size));
                stamp += 1;
            } else {
                let at = (rng() as usize) % live.len();
                let (v, s, _) = live.swap_remove(at);
                idx.remove(v, s);
                naive.remove(v, s);
            }
            let q = ((rng() % 40) as f64) / 4.0;
            assert_eq!(idx.sum_below(q), naive.sum_below(q));
        }
        assert_eq!(idx.len(), live.len());
        assert_eq!(idx.total(), live.iter().map(|&(_, _, sz)| sz).sum::<u64>());
    }

    #[test]
    fn strictness_and_signed_zero() {
        let mut idx = ValueIndex::default();
        idx.insert(-0.0, 0, 10);
        idx.insert(0.0, 1, 20);
        idx.insert(1.0, 2, 40);
        // IEEE: -0.0 < 0.0 is false, so nothing is below +0.0 or -0.0.
        assert_eq!(idx.sum_below(0.0), 0);
        assert_eq!(idx.sum_below(-0.0), 0);
        assert_eq!(idx.sum_below(1.0), 30);
        assert_eq!(idx.sum_below(f64::INFINITY), 70);
        // Removal by the original (un-normalized) value works.
        idx.remove(-0.0, 0);
        assert_eq!(idx.sum_below(1.0), 20);
    }

    #[test]
    fn slots_are_recycled() {
        let mut idx = ValueIndex::default();
        for round in 0..10u64 {
            for i in 0..100u64 {
                idx.insert(i as f64, round * 100 + i, 1);
            }
            for i in 0..100u64 {
                idx.remove(i as f64, round * 100 + i);
            }
        }
        assert_eq!(idx.len(), 0);
        assert!(idx.nodes.len() <= 100, "arena grew: {}", idx.nodes.len());
        assert_eq!(idx.sum_below(f64::INFINITY), 0);
    }
}
