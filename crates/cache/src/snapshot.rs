//! A tiny little-endian binary codec for cache and strategy state
//! snapshots.
//!
//! The live service mode serializes every proxy's complete mutable cache
//! state — heap slots, stamp counters, inflation values, frequency
//! tables — into its periodic snapshots, and the differential test suite
//! compares those byte strings across the service and batch replays.
//! That comparison is only meaningful if encoding is **canonical**: the
//! same logical state must always produce the same bytes. Hand-rolled
//! fixed-width little-endian fields guarantee exactly that (floats
//! travel as their IEEE-754 bit patterns via [`f64::to_bits`], so
//! round-trips are bit-exact), with no dependency footprint.
//!
//! Writers are free functions appending to a `Vec<u8>`; reading goes
//! through [`SnapshotReader`], a bounds-checked cursor that surfaces
//! truncation and corruption as [`SnapshotError`] instead of panicking —
//! snapshot files cross process boundaries and must never take down a
//! recovering service on bad input.

use std::error::Error;
use std::fmt;

/// Why a snapshot could not be decoded (or encoded, for unsupported
/// states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the field at byte offset `at`.
    Truncated {
        /// Byte offset of the incomplete read.
        at: usize,
    },
    /// A structurally invalid field (bad tag, impossible count, state
    /// kind mismatch).
    Corrupt(&'static str),
    /// The state cannot be snapshotted (e.g. a boxed `dyn` strategy).
    Unsupported(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { at } => {
                write!(f, "snapshot truncated at byte {at}")
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::Unsupported(what) => {
                write!(f, "state not snapshottable: {what}")
            }
        }
    }
}

impl Error for SnapshotError {}

/// Appends a `u8`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16`, little-endian.
#[inline]
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`, little-endian.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round-trip,
/// NaN payloads included).
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A bounds-checked read cursor over an encoded snapshot.
///
/// # Examples
///
/// ```
/// use pscd_cache::snapshot::{put_f64, put_u32, SnapshotReader};
///
/// let mut buf = Vec::new();
/// put_u32(&mut buf, 7);
/// put_f64(&mut buf, 1.25);
/// let mut r = SnapshotReader::new(&buf);
/// assert_eq!(r.read_u32()?, 7);
/// assert_eq!(r.read_f64()?, 1.25);
/// assert!(r.is_empty());
/// # Ok::<(), pscd_cache::snapshot::SnapshotError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let at = self.pos;
        let end = at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated { at })?;
        self.pos = end;
        Ok(&self.buf[at..end])
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the buffer is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the buffer is exhausted.
    pub fn read_u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the buffer is exhausted.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the buffer is exhausted.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the buffer is exhausted.
    pub fn read_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads `n` raw bytes — the accessor container formats use for
    /// embedded length-prefixed blobs (decode the returned slice with a
    /// nested reader).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if fewer than `n` bytes
    /// remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 7);
        // -0.0 survives bit-exactly (a plain `==` would conflate it with 0.0).
        assert_eq!(r.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.read_f64().unwrap().is_nan());
        assert!(r.is_empty());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_reports_offset() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.read_u16().unwrap(), 1);
        assert_eq!(r.position(), 2);
        assert_eq!(r.read_u64(), Err(SnapshotError::Truncated { at: 2 }));
        // A failed read consumes nothing.
        assert_eq!(r.position(), 2);
        assert_eq!(r.read_u16().unwrap(), 0);
    }

    #[test]
    fn read_bytes_slices_and_bounds_checks() {
        let buf = [1u8, 2, 3, 4, 5];
        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.read_bytes(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.read_bytes(9), Err(SnapshotError::Truncated { at: 3 }));
        assert_eq!(r.read_bytes(2).unwrap(), &[4, 5]);
        assert!(r.is_empty());
    }

    #[test]
    fn errors_display() {
        assert_eq!(
            SnapshotError::Truncated { at: 9 }.to_string(),
            "snapshot truncated at byte 9"
        );
        assert_eq!(
            SnapshotError::Corrupt("bad tag").to_string(),
            "snapshot corrupt: bad tag"
        );
        assert_eq!(
            SnapshotError::Unsupported("dyn strategy").to_string(),
            "state not snapshottable: dyn strategy"
        );
    }
}
