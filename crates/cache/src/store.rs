//! Byte-capacity cache store with value-ordered eviction.

use std::collections::HashMap;

use pscd_types::{Bytes, PageId};

use crate::keyheap::{HeapSlot, KeyHeap};
use crate::layout::Layout;
use crate::snapshot::{put_f64, put_u32, put_u64, SnapshotError, SnapshotReader};

/// One cached page with its current value under the owning policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredPage {
    /// The cached page.
    pub page: PageId,
    /// Bytes occupied.
    pub size: Bytes,
    /// Current value; eviction removes the smallest first.
    pub value: f64,
}

/// Sentinel heap position marking an absent dense slot.
const NO_POS: u32 = u32::MAX;

/// The page → heap-position table: hash-addressed or direct-indexed by
/// page ordinal (see [`Layout`]). All per-page state (value, stamp,
/// size) lives in the heap slot the position points at, so this table is
/// 4 bytes per tracked page and the dense form's construction cost is one
/// `u32` fill over the page universe.
#[derive(Debug, Clone)]
enum Backing {
    Sparse(HashMap<PageId, u32>),
    Dense(Vec<u32>),
}

impl Backing {
    #[inline]
    fn get(&self, page: PageId) -> Option<u32> {
        match self {
            Backing::Sparse(map) => map.get(&page).copied(),
            Backing::Dense(vec) => vec.get(page.as_usize()).copied().filter(|&p| p != NO_POS),
        }
    }

    /// Registers a fresh page; the page must not be live.
    #[inline]
    fn insert(&mut self, page: PageId, pos: u32) {
        match self {
            Backing::Sparse(map) => {
                map.insert(page, pos);
            }
            Backing::Dense(vec) => vec[page.as_usize()] = pos,
        }
    }

    #[inline]
    fn remove(&mut self, page: PageId) -> Option<u32> {
        match self {
            Backing::Sparse(map) => map.remove(&page),
            Backing::Dense(vec) => {
                let slot = vec.get_mut(page.as_usize())?;
                if *slot == NO_POS {
                    None
                } else {
                    Some(std::mem::replace(slot, NO_POS))
                }
            }
        }
    }

    /// `true` if `page` may legally be stored under this backing.
    #[inline]
    fn in_universe(&self, page: PageId) -> bool {
        match self {
            Backing::Sparse(_) => true,
            Backing::Dense(vec) => page.as_usize() < vec.len(),
        }
    }

    /// Heap-position writeback target for [`KeyHeap`] mutations.
    #[inline]
    fn set_pos(&mut self, page: PageId, pos: u32) {
        match self {
            Backing::Sparse(map) => {
                *map.get_mut(&page).expect("tracked page is live") = pos;
            }
            Backing::Dense(vec) => vec[page.as_usize()] = pos,
        }
    }
}

/// A capacity-limited page store whose entries carry a scalar *value*;
/// eviction always removes the least valuable page first (ties: least
/// recently (re)valued).
///
/// This is the substrate under every replacement policy in `pscd`: the
/// policy decides the values, the store tracks bytes and keeps the
/// min-value order in an eager index-addressable heap ([`KeyHeap`]), so
/// updates are `O(log n)` with no stale-entry churn and
/// [`peek_min`](CacheStore::peek_min) is a `&self` read. The heap slots
/// *are* the entries — the page table only maps pages to heap positions —
/// so the live population sits in one compact array and the push-time
/// placement question, [`candidate_size_below`](CacheStore::candidate_size_below),
/// is answered by a pruned walk of that array with zero bookkeeping on
/// the mutation paths.
///
/// Two page-table layouts exist (see [`Layout`]): the hash-addressed
/// default, and a dense direct-indexed form for replays over a compiled
/// trace whose page ids are ordinals `0..page_count`. The dense form
/// preallocates everything at construction and never allocates again.
///
/// # Examples
///
/// ```
/// use pscd_cache::CacheStore;
/// use pscd_types::{Bytes, PageId};
///
/// let mut store = CacheStore::new(Bytes::new(100));
/// store.insert(PageId::new(1), Bytes::new(60), 1.0);
/// store.insert(PageId::new(2), Bytes::new(40), 2.0);
/// assert!(store.free().is_zero());
/// let evicted = store.pop_min().unwrap();
/// assert_eq!(evicted.page, PageId::new(1));
/// assert_eq!(store.free(), Bytes::new(60));
/// ```
#[derive(Debug, Clone)]
pub struct CacheStore {
    capacity: Bytes,
    used: Bytes,
    positions: Backing,
    heap: KeyHeap,
    next_stamp: u64,
}

impl Default for CacheStore {
    fn default() -> Self {
        Self::new(Bytes::ZERO)
    }
}

impl CacheStore {
    /// Creates an empty hash-addressed store with the given byte capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self::with_layout(capacity, Layout::Sparse)
    }

    /// Creates an empty store with the given byte capacity and layout.
    ///
    /// A [`Layout::Dense`] store may only ever hold pages with ordinals
    /// in `0..page_count`; inserting outside that universe panics. All
    /// internal structures are preallocated to the universe size, so no
    /// later operation allocates.
    pub fn with_layout(capacity: Bytes, layout: Layout) -> Self {
        let (positions, heap) = match layout {
            Layout::Sparse => (Backing::Sparse(HashMap::new()), KeyHeap::new()),
            Layout::Dense { page_count } => (
                Backing::Dense(vec![NO_POS; page_count]),
                KeyHeap::with_capacity(page_count),
            ),
        };
        Self {
            capacity,
            used: Bytes::ZERO,
            positions,
            heap,
            next_stamp: 0,
        }
    }

    /// Shorthand for a [`Layout::Dense`] store over `page_count` ordinals.
    pub fn dense(capacity: Bytes, page_count: usize) -> Self {
        Self::with_layout(capacity, Layout::Dense { page_count })
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently occupied.
    #[inline]
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Remaining free bytes.
    #[inline]
    pub fn free(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of cached pages.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` if `page` is cached.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.positions.get(page).is_some()
    }

    /// The live heap slot of a cached page.
    #[inline]
    fn slot(&self, page: PageId) -> Option<&HeapSlot> {
        self.positions
            .get(page)
            .map(|pos| &self.heap.slots()[pos as usize])
    }

    /// The current value of a cached page.
    pub fn value(&self, page: PageId) -> Option<f64> {
        self.slot(page).map(|s| s.value)
    }

    /// The size of a cached page.
    pub fn size(&self, page: PageId) -> Option<Bytes> {
        self.slot(page).map(|s| s.size)
    }

    /// Inserts a page with an initial value. Replaces (and re-sizes) the
    /// page if already present.
    ///
    /// The store intentionally allows transient over-capacity — policies
    /// make room *before* inserting — but panics in debug builds if the
    /// page alone exceeds capacity, which every policy must reject earlier.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN, or if the store is [`Layout::Dense`] and
    /// `page` lies outside its ordinal universe.
    pub fn insert(&mut self, page: PageId, size: Bytes, value: f64) {
        assert!(!value.is_nan(), "page value must not be NaN");
        debug_assert!(size <= self.capacity, "page larger than the whole cache");
        self.detach(page);
        let stamp = self.bump();
        let Self {
            positions, heap, ..
        } = self;
        // Position 0 is a placeholder; the push writeback corrects it.
        positions.insert(page, 0);
        heap.push(
            HeapSlot {
                value,
                stamp,
                page,
                size,
            },
            &mut |p, pos| positions.set_pos(p, pos),
        );
        self.used += size;
    }

    /// Updates the value of a cached page. Returns `false` if absent.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn update_value(&mut self, page: PageId, value: f64) -> bool {
        assert!(!value.is_nan(), "page value must not be NaN");
        // Look up before bumping: a miss must not burn a stamp (stamps
        // order eviction ties, so phantom bumps would shift tie-breaks
        // between otherwise identical histories).
        let Some(pos) = self.positions.get(page) else {
            return false;
        };
        let stamp = self.bump();
        let Self {
            positions, heap, ..
        } = self;
        heap.update(pos, value, stamp, &mut |p, pos| positions.set_pos(p, pos));
        true
    }

    /// Removes a page, returning its record if present.
    pub fn remove(&mut self, page: PageId) -> Option<StoredPage> {
        self.detach(page).map(|slot| StoredPage {
            page,
            size: slot.size,
            value: slot.value,
        })
    }

    /// The least valuable page without removing it.
    pub fn peek_min(&self) -> Option<StoredPage> {
        self.heap.peek().map(|slot| StoredPage {
            page: slot.page,
            size: slot.size,
            value: slot.value,
        })
    }

    /// Removes and returns the least valuable page.
    pub fn pop_min(&mut self) -> Option<StoredPage> {
        let page = self.heap.peek()?.page;
        self.remove(page)
    }

    /// Total size of cached pages whose value is strictly below `value` —
    /// the *candidate pages* of the paper's push-time placement (§3.2).
    ///
    /// Answered by one branch-predictable sweep of the heap's compact
    /// slot array, with *no* auxiliary index to maintain on the
    /// insert/update/evict paths. The live population is small (tens of
    /// pages at the paper's capacities) and sits in one contiguous
    /// array, so the sweep is cheaper than any pointer-hopping index —
    /// and byte sizes sum in `u64`, so visit order cannot perturb the
    /// answer: it is bit-identical by construction.
    pub fn candidate_size_below(&self, value: f64) -> Bytes {
        let total: u64 = self
            .heap
            .slots()
            .iter()
            .filter(|slot| slot.value < value)
            .map(|slot| slot.size.as_u64())
            .sum();
        Bytes::new(total)
    }

    /// Iterates over all cached pages (arbitrary order). Cost is
    /// proportional to the live population in both layouts.
    pub fn iter(&self) -> impl Iterator<Item = StoredPage> + '_ {
        self.heap.slots().iter().map(|slot| StoredPage {
            page: slot.page,
            size: slot.size,
            value: slot.value,
        })
    }

    /// Serializes the complete mutable state — stamp counter plus every
    /// heap slot in heap order — for a snapshot. Capacity and layout are
    /// configuration, not state: they come from the owner at restore
    /// time. The dump is canonical (heap order is deterministic), so
    /// identical stores encode to identical bytes.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.next_stamp);
        put_u32(out, self.heap.len() as u32);
        for slot in self.heap.slots() {
            put_f64(out, slot.value);
            put_u64(out, slot.stamp);
            put_u32(out, slot.page.index());
            put_u64(out, slot.size.as_u64());
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state)
    /// into this store, replacing its current contents. The store keeps
    /// its own capacity and layout; the snapshot's slot array is adopted
    /// position for position, so the restored eviction order is
    /// bit-identical to the encoded one.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the buffer is truncated or the
    /// encoded population cannot be valid. On error the store's contents
    /// are unspecified (memory-safe, but partially restored) — discard it.
    pub fn decode_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let next_stamp = r.read_u64()?;
        let n = r.read_u32()? as usize;
        // Fixed 24-byte minimum per slot bounds n against garbage counts.
        if n > r.remaining() / 24 {
            return Err(SnapshotError::Corrupt("slot count exceeds snapshot size"));
        }
        while self.pop_min().is_some() {}
        let mut slots = Vec::with_capacity(n);
        let mut used = 0u64;
        for pos in 0..n {
            let value = r.read_f64()?;
            let stamp = r.read_u64()?;
            let page = PageId::new(r.read_u32()?);
            let size = Bytes::new(r.read_u64()?);
            if !self.positions.in_universe(page) {
                return Err(SnapshotError::Corrupt("page outside the dense universe"));
            }
            self.positions.insert(page, pos as u32);
            used += size.as_u64();
            slots.push(HeapSlot {
                value,
                stamp,
                page,
                size,
            });
        }
        self.heap = KeyHeap::from_slots(slots);
        self.used = Bytes::new(used);
        self.next_stamp = next_stamp;
        Ok(())
    }

    /// Unlinks a live entry from both structures, returning its slot.
    fn detach(&mut self, page: PageId) -> Option<HeapSlot> {
        let pos = self.positions.remove(page)?;
        let Self {
            positions, heap, ..
        } = self;
        let slot = heap.remove(pos, &mut |p, pos| positions.set_pos(p, pos));
        self.used -= slot.size;
        Some(slot)
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u32) -> PageId {
        PageId::new(i)
    }

    /// Every store test runs against both layouts.
    fn both(capacity: u64) -> [CacheStore; 2] {
        [
            CacheStore::new(Bytes::new(capacity)),
            CacheStore::dense(Bytes::new(capacity), 64),
        ]
    }

    #[test]
    fn insert_and_accounting() {
        for mut s in both(100) {
            assert!(s.is_empty());
            s.insert(page(1), Bytes::new(30), 1.0);
            s.insert(page(2), Bytes::new(20), 2.0);
            assert_eq!(s.len(), 2);
            assert_eq!(s.used(), Bytes::new(50));
            assert_eq!(s.free(), Bytes::new(50));
            assert!(s.contains(page(1)));
            assert_eq!(s.value(page(1)), Some(1.0));
            assert_eq!(s.size(page(2)), Some(Bytes::new(20)));
            assert_eq!(s.value(page(9)), None);
        }
    }

    #[test]
    fn reinsert_replaces() {
        for mut s in both(100) {
            s.insert(page(1), Bytes::new(30), 1.0);
            s.insert(page(1), Bytes::new(50), 9.0);
            assert_eq!(s.len(), 1);
            assert_eq!(s.used(), Bytes::new(50));
            assert_eq!(s.value(page(1)), Some(9.0));
        }
    }

    #[test]
    fn pop_min_orders_by_value() {
        for mut s in both(100) {
            s.insert(page(1), Bytes::new(10), 3.0);
            s.insert(page(2), Bytes::new(10), 1.0);
            s.insert(page(3), Bytes::new(10), 2.0);
            assert_eq!(s.pop_min().unwrap().page, page(2));
            assert_eq!(s.pop_min().unwrap().page, page(3));
            assert_eq!(s.pop_min().unwrap().page, page(1));
            assert!(s.pop_min().is_none());
            assert!(s.used().is_zero());
        }
    }

    #[test]
    fn equal_values_pop_oldest_first() {
        for mut s in both(100) {
            s.insert(page(1), Bytes::new(10), 1.0);
            s.insert(page(2), Bytes::new(10), 1.0);
            assert_eq!(s.pop_min().unwrap().page, page(1));
        }
        // Re-valuing refreshes recency: page 3 older stamp than re-valued 2.
        for mut s in both(100) {
            s.insert(page(2), Bytes::new(10), 1.0);
            s.insert(page(3), Bytes::new(10), 1.0);
            s.update_value(page(2), 1.0);
            assert_eq!(s.pop_min().unwrap().page, page(3));
        }
    }

    #[test]
    fn update_value_reorders() {
        for mut s in both(100) {
            s.insert(page(1), Bytes::new(10), 1.0);
            s.insert(page(2), Bytes::new(10), 2.0);
            assert!(s.update_value(page(1), 5.0));
            assert_eq!(s.peek_min().unwrap().page, page(2));
            assert_eq!(s.pop_min().unwrap().page, page(2));
            assert!(!s.update_value(page(9), 1.0));
        }
    }

    #[test]
    fn remove_then_pop_skips_removed() {
        for mut s in both(100) {
            s.insert(page(1), Bytes::new(10), 1.0);
            s.insert(page(2), Bytes::new(10), 2.0);
            assert_eq!(s.remove(page(1)).unwrap().size, Bytes::new(10));
            assert_eq!(s.pop_min().unwrap().page, page(2));
            assert!(s.remove(page(1)).is_none());
        }
    }

    #[test]
    fn candidate_size_below_counts_strictly() {
        for mut s in both(100) {
            s.insert(page(1), Bytes::new(10), 1.0);
            s.insert(page(2), Bytes::new(20), 2.0);
            s.insert(page(3), Bytes::new(30), 3.0);
            assert_eq!(s.candidate_size_below(3.0), Bytes::new(30));
            assert_eq!(s.candidate_size_below(3.1), Bytes::new(60));
            assert_eq!(s.candidate_size_below(1.0), Bytes::ZERO);
        }
    }

    #[test]
    fn iter_sees_all() {
        for mut s in both(100) {
            s.insert(page(1), Bytes::new(10), 1.0);
            s.insert(page(2), Bytes::new(20), 2.0);
            let mut pages: Vec<u32> = s.iter().map(|p| p.page.index()).collect();
            pages.sort_unstable();
            assert_eq!(pages, [1, 2]);
        }
    }

    #[test]
    fn many_updates_stay_consistent() {
        for mut s in both(1_000) {
            for i in 0..50 {
                s.insert(page(i), Bytes::new(10), i as f64);
            }
            for i in 0..50 {
                s.update_value(page(i), (50 - i) as f64);
            }
            // Min should now be the page with value 1 (i = 49).
            assert_eq!(s.peek_min().unwrap().page, page(49));
            assert_eq!(s.len(), 50);
            assert_eq!(s.used(), Bytes::new(500));
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_values_rejected() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), f64::NAN);
    }

    #[test]
    #[should_panic]
    fn dense_rejects_out_of_universe_inserts() {
        let mut s = CacheStore::dense(Bytes::new(100), 4);
        s.insert(page(4), Bytes::new(10), 1.0);
    }

    #[test]
    fn missed_update_burns_no_stamp() {
        // Regression: update_value on an absent page used to bump the
        // stamp counter, silently shifting later eviction tie-breaks.
        for [mut s, mut clean] in [both(100), both(100)] {
            s.insert(page(1), Bytes::new(10), 1.0);
            assert!(!s.update_value(page(9), 5.0));
            // If the miss had burned a stamp, page 2 would now carry stamp 2
            // and the tie-break below would be unaffected — so instead compare
            // against a store that never saw the miss.
            s.insert(page(2), Bytes::new(10), 1.0);
            clean.insert(page(1), Bytes::new(10), 1.0);
            clean.insert(page(2), Bytes::new(10), 1.0);
            assert_eq!(s.pop_min().unwrap().page, clean.pop_min().unwrap().page);
            assert_eq!(s.pop_min().unwrap().page, clean.pop_min().unwrap().page);
        }
    }

    #[test]
    fn candidate_size_matches_full_scan_under_churn() {
        // The indexed prefix sum must equal the O(n) scan it replaced,
        // bit for bit, across inserts, re-inserts, updates and evictions.
        let scan = |s: &CacheStore, v: f64| -> Bytes {
            s.iter().filter(|p| p.value < v).map(|p| p.size).sum()
        };
        for mut s in both(10_000) {
            let mut x = 0x9e37_79b9u64;
            let mut rng = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for step in 0..1_500u64 {
                match rng() % 4 {
                    0 | 1 => {
                        let p = page((rng() % 60) as u32);
                        let size = Bytes::new(rng() % 50 + 1);
                        let value = ((rng() % 24) as f64) / 8.0;
                        s.insert(p, size, value);
                    }
                    2 => {
                        let p = page((rng() % 60) as u32);
                        let value = ((rng() % 24) as f64) / 8.0;
                        s.update_value(p, value);
                    }
                    _ => {
                        s.pop_min();
                    }
                }
                let q = ((rng() % 32) as f64) / 8.0;
                assert_eq!(s.candidate_size_below(q), scan(&s, q), "step {step}");
            }
            assert_eq!(
                s.candidate_size_below(f64::INFINITY),
                s.used(),
                "everything is below +inf"
            );
        }
    }

    #[test]
    fn dense_and_sparse_pop_identically_under_churn() {
        // Same operation stream, both layouts: every pop must agree.
        let mut sparse = CacheStore::new(Bytes::new(10_000));
        let mut dense = CacheStore::dense(Bytes::new(10_000), 60);
        let mut x = 0x5bd1_e995u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..3_000u64 {
            match rng() % 5 {
                0 | 1 => {
                    let p = page((rng() % 60) as u32);
                    let size = Bytes::new(rng() % 50 + 1);
                    let value = ((rng() % 24) as f64) / 8.0;
                    sparse.insert(p, size, value);
                    dense.insert(p, size, value);
                }
                2 => {
                    let p = page((rng() % 60) as u32);
                    let value = ((rng() % 24) as f64) / 8.0;
                    assert_eq!(sparse.update_value(p, value), dense.update_value(p, value));
                }
                3 => {
                    let p = page((rng() % 60) as u32);
                    assert_eq!(sparse.remove(p), dense.remove(p));
                }
                _ => {
                    assert_eq!(sparse.peek_min(), dense.peek_min());
                    assert_eq!(sparse.pop_min(), dense.pop_min());
                }
            }
            assert_eq!(sparse.used(), dense.used());
            assert_eq!(sparse.len(), dense.len());
        }
        while let Some(got) = sparse.pop_min() {
            assert_eq!(Some(got), dense.pop_min());
        }
        assert!(dense.pop_min().is_none());
    }
}
