//! Byte-capacity cache store with value-ordered eviction.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use pscd_types::{Bytes, PageId};

use crate::vindex::ValueIndex;

/// One cached page with its current value under the owning policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredPage {
    /// The cached page.
    pub page: PageId,
    /// Bytes occupied.
    pub size: Bytes,
    /// Current value; eviction removes the smallest first.
    pub value: f64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: Bytes,
    value: f64,
    /// Bumped every time the value changes, to invalidate stale heap items.
    stamp: u64,
}

/// Max-heap item ordered so that `pop` yields the *smallest* value first,
/// breaking ties by insertion order (oldest first).
#[derive(Debug, Clone, Copy)]
struct HeapItem {
    value: f64,
    stamp: u64,
    page: PageId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-value at the top.
        other
            .value
            .partial_cmp(&self.value)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.stamp.cmp(&self.stamp))
            .then_with(|| other.page.cmp(&self.page))
    }
}

/// A capacity-limited page store whose entries carry a scalar *value*;
/// eviction always removes the least valuable page first (ties: least
/// recently (re)valued).
///
/// This is the substrate under every replacement policy in `pscd`: the
/// policy decides the values, the store tracks bytes and keeps the
/// min-value order (with a lazy-deletion heap, so value updates are
/// `O(log n)`). A value-ordered byte-prefix index rides along so the
/// push-time placement question — [`candidate_size_below`]
/// (CacheStore::candidate_size_below) — is `O(log n)` too instead of a
/// full scan.
///
/// # Examples
///
/// ```
/// use pscd_cache::CacheStore;
/// use pscd_types::{Bytes, PageId};
///
/// let mut store = CacheStore::new(Bytes::new(100));
/// store.insert(PageId::new(1), Bytes::new(60), 1.0);
/// store.insert(PageId::new(2), Bytes::new(40), 2.0);
/// assert!(store.free().is_zero());
/// let evicted = store.pop_min().unwrap();
/// assert_eq!(evicted.page, PageId::new(1));
/// assert_eq!(store.free(), Bytes::new(60));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CacheStore {
    capacity: Bytes,
    used: Bytes,
    entries: HashMap<PageId, Entry>,
    heap: BinaryHeap<HeapItem>,
    /// Mirrors the live entries, ordered by `(value, stamp)` with subtree
    /// byte sums, for sublinear strict-prefix queries.
    index: ValueIndex,
    next_stamp: u64,
}

impl CacheStore {
    /// Creates an empty store with the given byte capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self {
            capacity,
            used: Bytes::ZERO,
            entries: HashMap::new(),
            heap: BinaryHeap::new(),
            index: ValueIndex::default(),
            next_stamp: 0,
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently occupied.
    #[inline]
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Remaining free bytes.
    #[inline]
    pub fn free(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of cached pages.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if `page` is cached.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.entries.contains_key(&page)
    }

    /// The current value of a cached page.
    pub fn value(&self, page: PageId) -> Option<f64> {
        self.entries.get(&page).map(|e| e.value)
    }

    /// The size of a cached page.
    pub fn size(&self, page: PageId) -> Option<Bytes> {
        self.entries.get(&page).map(|e| e.size)
    }

    /// Inserts a page with an initial value. Replaces (and re-sizes) the
    /// page if already present.
    ///
    /// The store intentionally allows transient over-capacity — policies
    /// make room *before* inserting — but panics in debug builds if the
    /// page alone exceeds capacity, which every policy must reject earlier.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn insert(&mut self, page: PageId, size: Bytes, value: f64) {
        assert!(!value.is_nan(), "page value must not be NaN");
        debug_assert!(size <= self.capacity, "page larger than the whole cache");
        if let Some(old) = self.entries.remove(&page) {
            self.used -= old.size;
            self.index.remove(old.value, old.stamp);
        }
        let stamp = self.bump();
        self.entries.insert(page, Entry { size, value, stamp });
        self.used += size;
        self.heap.push(HeapItem { value, stamp, page });
        self.index.insert(value, stamp, size.as_u64());
    }

    /// Updates the value of a cached page. Returns `false` if absent.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn update_value(&mut self, page: PageId, value: f64) -> bool {
        assert!(!value.is_nan(), "page value must not be NaN");
        // Look up before bumping: a miss must not burn a stamp (stamps
        // order eviction ties, so phantom bumps would shift tie-breaks
        // between otherwise identical histories).
        let Some(&old) = self.entries.get(&page) else {
            return false;
        };
        let stamp = self.bump();
        let entry = self
            .entries
            .get_mut(&page)
            .expect("present: looked up above");
        entry.value = value;
        entry.stamp = stamp;
        self.heap.push(HeapItem { value, stamp, page });
        self.index.remove(old.value, old.stamp);
        self.index.insert(value, stamp, old.size.as_u64());
        true
    }

    /// Removes a page, returning its record if present.
    pub fn remove(&mut self, page: PageId) -> Option<StoredPage> {
        let entry = self.entries.remove(&page)?;
        self.used -= entry.size;
        self.index.remove(entry.value, entry.stamp);
        Some(StoredPage {
            page,
            size: entry.size,
            value: entry.value,
        })
    }

    /// The least valuable page without removing it.
    pub fn peek_min(&mut self) -> Option<StoredPage> {
        self.skim();
        self.heap.peek().map(|item| {
            let entry = &self.entries[&item.page];
            StoredPage {
                page: item.page,
                size: entry.size,
                value: entry.value,
            }
        })
    }

    /// Removes and returns the least valuable page.
    pub fn pop_min(&mut self) -> Option<StoredPage> {
        self.skim();
        let item = self.heap.pop()?;
        self.remove(item.page)
    }

    /// Total size of cached pages whose value is strictly below `value` —
    /// the *candidate pages* of the paper's push-time placement (§3.2).
    ///
    /// Answered from the byte-prefix index in `O(log n)`; this runs on
    /// every push-time admission attempt at every matched proxy, so a
    /// scan here dominated publish cost on large caches.
    pub fn candidate_size_below(&self, value: f64) -> Bytes {
        Bytes::new(self.index.sum_below(value))
    }

    /// Iterates over all cached pages (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = StoredPage> + '_ {
        self.entries.iter().map(|(&page, e)| StoredPage {
            page,
            size: e.size,
            value: e.value,
        })
    }

    /// Drops stale heap items (lazy deletion).
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            match self.entries.get(&top.page) {
                Some(e) if e.stamp == top.stamp => return,
                _ => {
                    self.heap.pop();
                }
            }
        }
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u32) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn insert_and_accounting() {
        let mut s = CacheStore::new(Bytes::new(100));
        assert!(s.is_empty());
        s.insert(page(1), Bytes::new(30), 1.0);
        s.insert(page(2), Bytes::new(20), 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.used(), Bytes::new(50));
        assert_eq!(s.free(), Bytes::new(50));
        assert!(s.contains(page(1)));
        assert_eq!(s.value(page(1)), Some(1.0));
        assert_eq!(s.size(page(2)), Some(Bytes::new(20)));
        assert_eq!(s.value(page(9)), None);
    }

    #[test]
    fn reinsert_replaces() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(30), 1.0);
        s.insert(page(1), Bytes::new(50), 9.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.used(), Bytes::new(50));
        assert_eq!(s.value(page(1)), Some(9.0));
    }

    #[test]
    fn pop_min_orders_by_value() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), 3.0);
        s.insert(page(2), Bytes::new(10), 1.0);
        s.insert(page(3), Bytes::new(10), 2.0);
        assert_eq!(s.pop_min().unwrap().page, page(2));
        assert_eq!(s.pop_min().unwrap().page, page(3));
        assert_eq!(s.pop_min().unwrap().page, page(1));
        assert!(s.pop_min().is_none());
        assert!(s.used().is_zero());
    }

    #[test]
    fn equal_values_pop_oldest_first() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), 1.0);
        s.insert(page(2), Bytes::new(10), 1.0);
        assert_eq!(s.pop_min().unwrap().page, page(1));
        // Re-valuing refreshes recency: page 3 older stamp than re-valued 2.
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(2), Bytes::new(10), 1.0);
        s.insert(page(3), Bytes::new(10), 1.0);
        s.update_value(page(2), 1.0);
        assert_eq!(s.pop_min().unwrap().page, page(3));
    }

    #[test]
    fn update_value_reorders() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), 1.0);
        s.insert(page(2), Bytes::new(10), 2.0);
        assert!(s.update_value(page(1), 5.0));
        assert_eq!(s.peek_min().unwrap().page, page(2));
        assert_eq!(s.pop_min().unwrap().page, page(2));
        assert!(!s.update_value(page(9), 1.0));
    }

    #[test]
    fn remove_then_pop_skips_stale() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), 1.0);
        s.insert(page(2), Bytes::new(10), 2.0);
        assert_eq!(s.remove(page(1)).unwrap().size, Bytes::new(10));
        assert_eq!(s.pop_min().unwrap().page, page(2));
        assert!(s.remove(page(1)).is_none());
    }

    #[test]
    fn candidate_size_below_counts_strictly() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), 1.0);
        s.insert(page(2), Bytes::new(20), 2.0);
        s.insert(page(3), Bytes::new(30), 3.0);
        assert_eq!(s.candidate_size_below(3.0), Bytes::new(30));
        assert_eq!(s.candidate_size_below(3.1), Bytes::new(60));
        assert_eq!(s.candidate_size_below(1.0), Bytes::ZERO);
    }

    #[test]
    fn iter_sees_all() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), 1.0);
        s.insert(page(2), Bytes::new(20), 2.0);
        let mut pages: Vec<u32> = s.iter().map(|p| p.page.index()).collect();
        pages.sort_unstable();
        assert_eq!(pages, [1, 2]);
    }

    #[test]
    fn many_updates_stay_consistent() {
        let mut s = CacheStore::new(Bytes::new(1_000));
        for i in 0..50 {
            s.insert(page(i), Bytes::new(10), i as f64);
        }
        for i in 0..50 {
            s.update_value(page(i), (50 - i) as f64);
        }
        // Min should now be the page with value 1 (i = 49).
        assert_eq!(s.peek_min().unwrap().page, page(49));
        assert_eq!(s.len(), 50);
        assert_eq!(s.used(), Bytes::new(500));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_values_rejected() {
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), f64::NAN);
    }

    #[test]
    fn missed_update_burns_no_stamp() {
        // Regression: update_value on an absent page used to bump the
        // stamp counter, silently shifting later eviction tie-breaks.
        let mut s = CacheStore::new(Bytes::new(100));
        s.insert(page(1), Bytes::new(10), 1.0);
        assert!(!s.update_value(page(9), 5.0));
        // If the miss had burned a stamp, page 2 would now carry stamp 2
        // and the tie-break below would be unaffected — so instead compare
        // against a store that never saw the miss.
        s.insert(page(2), Bytes::new(10), 1.0);
        let mut clean = CacheStore::new(Bytes::new(100));
        clean.insert(page(1), Bytes::new(10), 1.0);
        clean.insert(page(2), Bytes::new(10), 1.0);
        assert_eq!(s.pop_min().unwrap().page, clean.pop_min().unwrap().page);
        assert_eq!(s.pop_min().unwrap().page, clean.pop_min().unwrap().page);
    }

    #[test]
    fn candidate_size_matches_full_scan_under_churn() {
        // The indexed prefix sum must equal the O(n) scan it replaced,
        // bit for bit, across inserts, re-inserts, updates and evictions.
        let scan = |s: &CacheStore, v: f64| -> Bytes {
            s.iter().filter(|p| p.value < v).map(|p| p.size).sum()
        };
        let mut s = CacheStore::new(Bytes::new(10_000));
        let mut x = 0x9e37_79b9u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for step in 0..1_500u64 {
            match rng() % 4 {
                0 | 1 => {
                    let p = page((rng() % 60) as u32);
                    let size = Bytes::new(rng() % 50 + 1);
                    let value = ((rng() % 24) as f64) / 8.0;
                    s.insert(p, size, value);
                }
                2 => {
                    let p = page((rng() % 60) as u32);
                    let value = ((rng() % 24) as f64) / 8.0;
                    s.update_value(p, value);
                }
                _ => {
                    s.pop_min();
                }
            }
            let q = ((rng() % 32) as f64) / 8.0;
            assert_eq!(s.candidate_size_below(q), scan(&s, q), "step {step}");
        }
        assert_eq!(
            s.candidate_size_below(f64::INFINITY),
            s.used(),
            "everything is below +inf"
        );
    }
}
