//! An eager, index-addressable min-heap over `(value, stamp, page)` keys.
//!
//! [`CacheStore`](crate::CacheStore) used to keep its eviction order in a
//! lazy-deletion `BinaryHeap`: every value update pushed a fresh item and
//! left the stale one behind, so the heap grew without bound over a run
//! and `peek_min` had to mutate the heap to skim stale tops. [`KeyHeap`]
//! replaces that with an *eager* heap of exactly the live entries: each
//! slot knows its array position, and every mutation reports position
//! moves through a caller-supplied writeback so an external table (a
//! `HashMap` entry or a dense per-ordinal slot) can address any element
//! directly. That makes `peek` a `&self` read, `remove`/`update`
//! `O(log n)` without tombstones, and the heap's footprint proportional
//! to the cache's live population — the properties the allocation-free
//! replay loop is built on.
//!
//! The comparator is *exactly* the lazy heap's: smallest value first,
//! ties broken by smallest stamp (oldest (re)valuation), then smallest
//! page id. Stamps are unique within one owner, so the pop sequence is a
//! total order and provably identical to the lazy-deletion heap's.

use std::cmp::Ordering;

use pscd_types::{Bytes, PageId};

/// One live heap element: the eviction key plus the page it belongs to
/// and its size. The slot is the *only* per-page record the store keeps —
/// the page table maps ordinals to heap positions — so everything a
/// lookup, peek or eviction needs travels with the slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeapSlot {
    /// Current policy value; eviction pops the smallest first.
    pub value: f64,
    /// Monotone (re)valuation stamp; ties pop oldest first.
    pub stamp: u64,
    /// The page this key belongs to.
    pub page: PageId,
    /// Bytes the page occupies (payload — never compared).
    pub size: Bytes,
}

impl HeapSlot {
    /// `true` if `self` pops before `other`.
    #[inline]
    fn before(&self, other: &Self) -> bool {
        // `partial_cmp` falls back to Equal exactly like the old lazy
        // heap; NaN values are rejected upstream so the branch is moot.
        match self
            .value
            .partial_cmp(&other.value)
            .unwrap_or(Ordering::Equal)
        {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => (self.stamp, self.page) < (other.stamp, other.page),
        }
    }
}

/// An index-addressable binary min-heap (see the module docs).
///
/// Every mutating call takes a `track(page, pos)` writeback closure and
/// invokes it for each slot whose array position changed (including the
/// inserted or re-keyed slot's final position), never for a removed slot.
#[derive(Debug, Clone, Default)]
pub struct KeyHeap {
    slots: Vec<HeapSlot>,
}

impl KeyHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty heap with room for `n` slots before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
        }
    }

    /// Number of live slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the heap holds nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The live slots in heap order (position `i`'s children sit at
    /// `2i + 1` and `2i + 2`). Useful for iterating the live population
    /// without any notion of sortedness.
    #[inline]
    pub fn slots(&self) -> &[HeapSlot] {
        &self.slots
    }

    /// Rebuilds a heap from a slot array previously captured via
    /// [`slots`](Self::slots). The array is adopted verbatim: a dump of a
    /// valid heap is itself a valid heap, so restoring it position for
    /// position reproduces the original ordering bit for bit — which is
    /// what snapshot round-trips rely on.
    pub(crate) fn from_slots(slots: Vec<HeapSlot>) -> Self {
        debug_assert!((1..slots.len()).all(|i| !slots[i].before(&slots[(i - 1) / 2])));
        Self { slots }
    }

    /// The minimum slot, without mutating anything.
    #[inline]
    pub fn peek(&self) -> Option<&HeapSlot> {
        self.slots.first()
    }

    /// Inserts a slot, reporting every position move through `track`.
    pub fn push(&mut self, slot: HeapSlot, track: &mut impl FnMut(PageId, u32)) {
        self.slots.push(slot);
        self.sift_up(self.slots.len() - 1, track);
    }

    /// Removes and returns the minimum slot.
    pub fn pop(&mut self, track: &mut impl FnMut(PageId, u32)) -> Option<HeapSlot> {
        if self.slots.is_empty() {
            None
        } else {
            Some(self.remove(0, track))
        }
    }

    /// Removes the slot at `pos` (as last reported through `track`).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    pub fn remove(&mut self, pos: u32, track: &mut impl FnMut(PageId, u32)) -> HeapSlot {
        let i = pos as usize;
        let last = self.slots.len() - 1;
        self.slots.swap(i, last);
        let removed = self.slots.pop().expect("remove from a non-empty heap");
        if i < self.slots.len() {
            // The former tail landed mid-heap; it may belong either way.
            if self.sift_up(i, track) == i {
                self.sift_down(i, track);
            }
        }
        removed
    }

    /// Re-keys the slot at `pos` and restores heap order.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    pub fn update(
        &mut self,
        pos: u32,
        value: f64,
        stamp: u64,
        track: &mut impl FnMut(PageId, u32),
    ) {
        let i = pos as usize;
        self.slots[i].value = value;
        self.slots[i].stamp = stamp;
        if self.sift_up(i, track) == i {
            self.sift_down(i, track);
        }
    }

    /// Moves `slots[i]` up to its place; reports every move plus the
    /// final resting position. Returns the final position.
    fn sift_up(&mut self, mut i: usize, track: &mut impl FnMut(PageId, u32)) -> usize {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots[i].before(&self.slots[parent]) {
                self.slots.swap(i, parent);
                track(self.slots[i].page, i as u32);
                i = parent;
            } else {
                break;
            }
        }
        track(self.slots[i].page, i as u32);
        i
    }

    /// Moves `slots[i]` down to its place; reports every move plus the
    /// final resting position. Returns the final position.
    fn sift_down(&mut self, mut i: usize, track: &mut impl FnMut(PageId, u32)) -> usize {
        loop {
            let left = 2 * i + 1;
            let right = left + 1;
            let mut min = i;
            if left < self.slots.len() && self.slots[left].before(&self.slots[min]) {
                min = left;
            }
            if right < self.slots.len() && self.slots[right].before(&self.slots[min]) {
                min = right;
            }
            if min == i {
                break;
            }
            self.slots.swap(i, min);
            track(self.slots[i].page, i as u32);
            i = min;
        }
        track(self.slots[i].page, i as u32);
        i
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;

    fn page(i: u32) -> PageId {
        PageId::new(i)
    }

    /// A reference harness: a `KeyHeap` plus a position map maintained
    /// purely through the writeback, checked for consistency after every
    /// operation.
    #[derive(Default)]
    struct Tracked {
        heap: KeyHeap,
        pos: HashMap<PageId, u32>,
    }

    impl Tracked {
        fn push(&mut self, value: f64, stamp: u64, p: PageId) {
            let pos = &mut self.pos;
            self.heap.push(
                HeapSlot {
                    value,
                    stamp,
                    page: p,
                    size: Bytes::new(1),
                },
                &mut |pg, i| {
                    pos.insert(pg, i);
                },
            );
            self.check();
        }

        fn pop(&mut self) -> Option<HeapSlot> {
            let pos = &mut self.pos;
            let out = self.heap.pop(&mut |pg, i| {
                pos.insert(pg, i);
            });
            if let Some(s) = out {
                self.pos.remove(&s.page);
            }
            self.check();
            out
        }

        fn remove(&mut self, p: PageId) -> HeapSlot {
            let at = self.pos[&p];
            let pos = &mut self.pos;
            let out = self.heap.remove(at, &mut |pg, i| {
                pos.insert(pg, i);
            });
            self.pos.remove(&p);
            self.check();
            out
        }

        fn update(&mut self, p: PageId, value: f64, stamp: u64) {
            let at = self.pos[&p];
            let pos = &mut self.pos;
            self.heap.update(at, value, stamp, &mut |pg, i| {
                pos.insert(pg, i);
            });
            self.check();
        }

        fn check(&self) {
            assert_eq!(self.pos.len(), self.heap.len(), "position map drift");
            for (&p, &i) in &self.pos {
                assert_eq!(self.heap.slots()[i as usize].page, p, "stale position");
            }
            for i in 1..self.heap.len() {
                let parent = (i - 1) / 2;
                assert!(
                    !self.heap.slots()[i].before(&self.heap.slots()[parent]),
                    "heap property violated at {i}"
                );
            }
        }
    }

    #[test]
    fn pops_in_value_then_stamp_then_page_order() {
        let mut t = Tracked::default();
        t.push(2.0, 0, page(1));
        t.push(1.0, 1, page(2));
        t.push(1.0, 2, page(3));
        t.push(3.0, 3, page(4));
        let order: Vec<u32> = std::iter::from_fn(|| t.pop())
            .map(|s| s.page.index())
            .collect();
        assert_eq!(order, [2, 3, 1, 4]);
    }

    #[test]
    fn remove_and_update_keep_positions_honest() {
        let mut t = Tracked::default();
        for i in 0..20 {
            t.push((i % 7) as f64, i, page(i as u32));
        }
        assert_eq!(t.remove(page(13)).page, page(13));
        assert_eq!(t.remove(page(0)).page, page(0));
        t.update(page(7), -1.0, 20);
        assert_eq!(t.pop().unwrap().page, page(7));
        t.update(page(14), 99.0, 21);
        let mut rest: Vec<u32> = std::iter::from_fn(|| t.pop())
            .map(|s| s.page.index())
            .collect();
        assert_eq!(rest.pop(), Some(14), "re-keyed to max pops last");
        assert_eq!(rest.len(), 16);
    }

    #[test]
    fn matches_reference_binary_heap_under_churn() {
        // Drive the eager heap and a (sort-based) reference through the
        // same operation stream; the pop order must match exactly.
        let mut t = Tracked::default();
        let mut reference: Vec<HeapSlot> = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut stamp = 0u64;
        let mut next_page = 0u32;
        for _ in 0..2_000 {
            match rng() % 4 {
                0 | 1 => {
                    let value = ((rng() % 16) as f64) / 4.0;
                    t.push(value, stamp, page(next_page));
                    reference.push(HeapSlot {
                        value,
                        stamp,
                        page: page(next_page),
                        size: Bytes::new(1),
                    });
                    stamp += 1;
                    next_page += 1;
                }
                2 if !reference.is_empty() => {
                    let k = (rng() as usize) % reference.len();
                    let p = reference[k].page;
                    let value = ((rng() % 16) as f64) / 4.0;
                    t.update(p, value, stamp);
                    reference[k].value = value;
                    reference[k].stamp = stamp;
                    stamp += 1;
                }
                _ => {
                    let got = t.pop();
                    reference.sort_by(|a, b| {
                        a.value
                            .partial_cmp(&b.value)
                            .unwrap()
                            .then(a.stamp.cmp(&b.stamp))
                    });
                    let want = if reference.is_empty() {
                        None
                    } else {
                        Some(reference.remove(0))
                    };
                    assert_eq!(got.map(|s| s.page), want.map(|s| s.page));
                }
            }
        }
    }
}
