//! Sparse vs. dense state layout for page-keyed structures.
//!
//! A compiled trace guarantees its page ids are dense ordinals
//! `0..page_count` (the `CompiledTrace` ordinal contract), which lets
//! every page-keyed table in the replay hot loop — cache entries,
//! frequency counts, per-strategy side state — live in a flat `Vec`
//! indexed by ordinal instead of a `HashMap`. [`Layout`] is the single
//! knob that selects between the two representations at construction
//! time; the sparse form remains the default for callers that feed
//! arbitrary page ids (unit tests, the differential reference loop,
//! external strategies).

use std::collections::HashMap;

use pscd_types::PageId;

/// How a page-keyed structure stores its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Hash-addressed; accepts any page id. The default.
    #[default]
    Sparse,
    /// Direct-indexed by page ordinal; only ids in `0..page_count` may
    /// ever be stored (reads outside the range simply miss). Storage for
    /// the full universe is preallocated up front, so steady-state
    /// mutation never allocates.
    Dense {
        /// Size of the page-id universe (`CompiledTrace::pages().len()`).
        page_count: usize,
    },
}

/// A page-keyed table of plain values where the default value means
/// "absent" — the representation behind frequency counts and per-page
/// counters. Under [`Layout::Dense`] reads and writes are direct `Vec`
/// indexing; under [`Layout::Sparse`] they fall back to a `HashMap`.
#[derive(Debug, Clone)]
pub struct PageTable<T> {
    repr: Repr<T>,
}

#[derive(Debug, Clone)]
enum Repr<T> {
    Sparse(HashMap<PageId, T>),
    Dense(Vec<T>),
}

impl<T: Copy + Default> PageTable<T> {
    /// An empty table with the given layout.
    pub fn with_layout(layout: Layout) -> Self {
        Self {
            repr: match layout {
                Layout::Sparse => Repr::Sparse(HashMap::new()),
                Layout::Dense { page_count } => Repr::Dense(vec![T::default(); page_count]),
            },
        }
    }

    /// The value for `page` (`T::default()` if never set).
    #[inline]
    pub fn get(&self, page: PageId) -> T {
        match &self.repr {
            Repr::Sparse(map) => map.get(&page).copied().unwrap_or_default(),
            Repr::Dense(vec) => vec.get(page.as_usize()).copied().unwrap_or_default(),
        }
    }

    /// Sets the value for `page`.
    ///
    /// # Panics
    ///
    /// Panics under [`Layout::Dense`] if `page` is outside the declared
    /// universe — storing such an id would silently violate the ordinal
    /// contract.
    #[inline]
    pub fn set(&mut self, page: PageId, value: T) {
        match &mut self.repr {
            Repr::Sparse(map) => {
                map.insert(page, value);
            }
            Repr::Dense(vec) => vec[page.as_usize()] = value,
        }
    }

    /// Resets `page` to the absent (default) value.
    #[inline]
    pub fn remove(&mut self, page: PageId) {
        match &mut self.repr {
            Repr::Sparse(map) => {
                map.remove(&page);
            }
            Repr::Dense(vec) => {
                if let Some(slot) = vec.get_mut(page.as_usize()) {
                    *slot = T::default();
                }
            }
        }
    }

    /// Resets every page to the absent value, keeping the layout (and,
    /// for the dense form, the preallocated universe).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Sparse(map) => map.clear(),
            Repr::Dense(vec) => vec.fill(T::default()),
        }
    }
}

impl<T: Copy + Default + PartialEq> PageTable<T> {
    /// All non-default entries, sorted by page id. The sparse form's hash
    /// order is nondeterministic, so snapshot encoders go through this to
    /// get a canonical dump.
    pub fn entries(&self) -> Vec<(PageId, T)> {
        let mut out: Vec<(PageId, T)> = match &self.repr {
            Repr::Sparse(map) => map
                .iter()
                .filter(|(_, v)| **v != T::default())
                .map(|(&p, &v)| (p, v))
                .collect(),
            Repr::Dense(vec) => vec
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != T::default())
                .map(|(i, &v)| (PageId::new(i as u32), v))
                .collect(),
        };
        out.sort_unstable_by_key(|(p, _)| *p);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_and_dense_agree() {
        let mut sparse: PageTable<u32> = PageTable::with_layout(Layout::Sparse);
        let mut dense: PageTable<u32> = PageTable::with_layout(Layout::Dense { page_count: 8 });
        for t in [&mut sparse, &mut dense] {
            t.set(PageId::new(3), 7);
            t.set(PageId::new(0), 1);
            t.set(PageId::new(3), t.get(PageId::new(3)) + 1);
            t.remove(PageId::new(0));
        }
        for p in 0..8 {
            assert_eq!(sparse.get(PageId::new(p)), dense.get(PageId::new(p)));
        }
        assert_eq!(dense.get(PageId::new(3)), 8);
        assert_eq!(dense.get(PageId::new(100)), 0, "out-of-range reads miss");
    }

    #[test]
    #[should_panic]
    fn dense_rejects_out_of_universe_writes() {
        let mut dense: PageTable<u32> = PageTable::with_layout(Layout::Dense { page_count: 4 });
        dense.set(PageId::new(4), 1);
    }
}
