//! Byte-capacity cache substrate and classic replacement policies.
//!
//! This crate provides the access-time caching layer the paper builds on:
//!
//! * [`CacheStore`] — a capacity-limited page store with value-ordered
//!   eviction (eager index-addressable min-heap, [`KeyHeap`]).
//! * [`Layout`] — sparse (hash-table) vs. dense (page-ordinal-indexed
//!   array) state backing, selectable per cache. Dense mode preallocates
//!   every table to the page-universe size so the steady-state replay
//!   loop performs no heap allocations.
//! * [`GreedyDualEngine`] — the greedy-dual machinery shared by the whole
//!   policy family: inflation value `L`, In-Cache LFU reference counts,
//!   always-admit and value-gated placement, and the push-time placement
//!   primitive used by the subscription-aware strategies in `pscd-core`.
//! * Classic policies behind the [`CachePolicy`] trait: [`Lru`], [`Gds`]
//!   (GreedyDual-Size), [`LfuDa`] and [`GdStar`] — the last being the
//!   paper's access-time baseline (eq. 1).
//!
//! # Examples
//!
//! ```
//! use pscd_cache::{CachePolicy, GdStar, PageRef};
//! use pscd_types::{Bytes, PageId};
//!
//! let mut cache = GdStar::new(Bytes::from_kib(64), 2.0);
//! let mut evicted = Vec::new();
//! let page = PageRef::new(PageId::new(0), Bytes::new(9_000), 3.0);
//! assert!(cache.access(&page, &mut evicted).is_miss());
//! assert!(cache.access(&page, &mut evicted).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod classic;
mod engine;
mod keyheap;
mod layout;
mod policy;
pub mod snapshot;
mod store;

pub use classic::{GdStar, Gds, LfuDa, Lru};
pub use engine::GreedyDualEngine;
pub use keyheap::{HeapSlot, KeyHeap};
pub use layout::{Layout, PageTable};
pub use policy::{AccessOutcome, CachePolicy, PageRef};
pub use snapshot::{SnapshotError, SnapshotReader};
pub use store::{CacheStore, StoredPage};
