//! The shared greedy-dual replacement engine.

use pscd_obs::{AdmitOrigin, EvictReason, NullObserver, ObsHandle, Observer};
use pscd_types::{Bytes, PageId};

use crate::layout::{Layout, PageTable};
use crate::snapshot::{put_f64, put_u32, SnapshotError, SnapshotReader};
use crate::{AccessOutcome, CacheStore, PageRef};

/// The greedy-dual family's shared machinery: an *inflation* value `L` that
/// rises to the value of the last evicted page, in-cache reference counts
/// (In-Cache LFU: a page's count is discarded when it is evicted, as the
/// paper's GD\* implementation does), and value-ordered eviction.
///
/// Every greedy-dual policy values pages as `V(p) = L + g(p)` for some
/// weight `g`; the engine is parameterized by `g` per call so one engine
/// serves LRU (`g = 1`), GDS (`g = c/s`), LFU-DA (`g = f`), GD\*
/// (`g = (f·c/s)^(1/β)`) and the subscription-aware variants built in
/// `pscd-core`.
///
/// Evicted pages are reported through caller-owned scratch buffers (a
/// `&mut Vec<PageId>` per operation, cleared on entry): with a
/// [`Layout::Dense`] store and a warm scratch buffer, no engine operation
/// allocates.
///
/// The observer parameter defaults to [`NullObserver`], whose hooks are
/// compile-time disabled: uninstrumented engines pay nothing. An engine
/// built via [`with_observer`](GreedyDualEngine::with_observer) reports
/// every admission and eviction (with the victim's dying value and an
/// [`EvictReason`]) through its [`ObsHandle`].
#[derive(Debug)]
pub struct GreedyDualEngine<O: Observer = NullObserver> {
    store: CacheStore,
    inflation: f64,
    freq: PageTable<u32>,
    obs: ObsHandle<O>,
}

impl<O: Observer> Clone for GreedyDualEngine<O> {
    fn clone(&self) -> Self {
        Self {
            store: self.store.clone(),
            inflation: self.inflation,
            freq: self.freq.clone(),
            obs: self.obs.clone(),
        }
    }
}

impl GreedyDualEngine {
    /// Creates an unobserved engine with the given capacity; `L` starts
    /// at 0.
    pub fn new(capacity: Bytes) -> Self {
        Self::with_observer(capacity, ObsHandle::disabled())
    }
}

impl Default for GreedyDualEngine {
    fn default() -> Self {
        Self::new(Bytes::new(0))
    }
}

impl<O: Observer> GreedyDualEngine<O> {
    /// Creates an engine reporting admissions and evictions to `obs`.
    pub fn with_observer(capacity: Bytes, obs: ObsHandle<O>) -> Self {
        Self::with_layout(capacity, Layout::Sparse, obs)
    }

    /// Creates an engine with an explicit state [`Layout`]. The dense
    /// layout preallocates the store and the frequency table for the full
    /// page universe, so steady-state operation never allocates.
    pub fn with_layout(capacity: Bytes, layout: Layout, obs: ObsHandle<O>) -> Self {
        Self {
            store: CacheStore::with_layout(capacity, layout),
            inflation: 0.0,
            freq: PageTable::with_layout(layout),
            obs,
        }
    }

    /// The current inflation value `L`.
    #[inline]
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// The in-cache reference count of a page (0 if absent).
    #[inline]
    pub fn frequency(&self, page: PageId) -> u32 {
        self.freq.get(page)
    }

    /// Read access to the underlying store.
    #[inline]
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// Records an access under `V(p) = value(f, L)`, where `value` receives
    /// the page's updated in-cache reference count and the current
    /// inflation `L` and returns the page's absolute value (greedy-dual
    /// policies return `L + g(p)`; absolute-valued policies ignore `L`).
    /// Misses always admit the page (evicting as needed), matching the
    /// classic GD\* pseudo-code; pages larger than the whole cache are
    /// bypassed.
    ///
    /// `evicted` is cleared on entry and filled with the evicted pages.
    pub fn access<W: FnMut(u32, f64) -> f64>(
        &mut self,
        page: &PageRef,
        mut value: W,
        evicted: &mut Vec<PageId>,
    ) -> AccessOutcome {
        evicted.clear();
        if self.store.contains(page.page) {
            let f = self.freq.get(page.page) + 1;
            self.freq.set(page.page, f);
            let v = value(f, self.inflation);
            self.store.update_value(page.page, v);
            return AccessOutcome::Hit;
        }
        if page.size > self.store.capacity() {
            return AccessOutcome::MissBypassed;
        }
        self.make_room(page.size, evicted);
        self.freq.set(page.page, 1);
        let v = value(1, self.inflation);
        self.store.insert(page.page, page.size, v);
        if O::ENABLED {
            self.obs.admit(page.page, page.size, v, AdmitOrigin::Access);
        }
        AccessOutcome::MissAdmitted
    }

    /// Records an access under a *value-gated* admission: on a miss the
    /// page enters the cache only if its value `L + weight(f)` exceeds the
    /// values of enough current residents (the paper's single-cache
    /// combined schemes, §3.3: "the replacement module discards the
    /// requested page immediately after forwarding it to the user if the
    /// page's value is not high enough").
    ///
    /// `evicted` is cleared on entry and filled with the evicted pages.
    pub fn access_gated<W: FnMut(u32, f64) -> f64>(
        &mut self,
        page: &PageRef,
        mut value: W,
        evicted: &mut Vec<PageId>,
    ) -> AccessOutcome {
        evicted.clear();
        if self.store.contains(page.page) {
            let f = self.freq.get(page.page) + 1;
            self.freq.set(page.page, f);
            let v = value(f, self.inflation);
            self.store.update_value(page.page, v);
            return AccessOutcome::Hit;
        }
        let f = 1;
        let v = value(f, self.inflation);
        if self.try_admit(page, v, EvictReason::Access, evicted) {
            self.freq.set(page.page, f);
            if O::ENABLED {
                self.obs.admit(page.page, page.size, v, AdmitOrigin::Access);
            }
            AccessOutcome::MissAdmitted
        } else {
            AccessOutcome::MissBypassed
        }
    }

    /// Push-time placement of a page valued at `value` (absolute, not
    /// relative to `L`): stores it only if free space plus the total size
    /// of strictly-less-valuable residents covers the page (§3.2/§3.3).
    /// Returns `true` if the page is cached afterwards (trivially so when
    /// it already was), `false` if it was declined. `evicted` is cleared
    /// on entry and filled with the evicted pages.
    pub fn push_valued(&mut self, page: &PageRef, value: f64, evicted: &mut Vec<PageId>) -> bool {
        evicted.clear();
        if self.store.contains(page.page) {
            return true;
        }
        if !self.try_admit(page, value, EvictReason::Push, evicted) {
            return false;
        }
        self.freq.set(page.page, 0);
        if O::ENABLED {
            self.obs
                .admit(page.page, page.size, value, AdmitOrigin::Push);
        }
        true
    }

    /// Updates the cached page's value (e.g. after a subscription-count
    /// change). Returns `false` if the page is not cached.
    pub fn revalue(&mut self, page: PageId, value: f64) -> bool {
        self.store.update_value(page, value)
    }

    /// Removes a page without reporting an eviction, returning its
    /// `(size, value)` if present. For ownership transfers where the
    /// bytes live on elsewhere (e.g. a dual-caches PC→AC move) — the
    /// caller reports the transfer through its own hook instead.
    pub fn take(&mut self, page: PageId) -> Option<(Bytes, f64)> {
        self.freq.remove(page);
        self.store.remove(page).map(|p| (p.size, p.value))
    }

    /// Removes a page (without touching `L`), returning `true` if present.
    /// Reported to the observer as an [`EvictReason::Invalidate`].
    pub fn evict(&mut self, page: PageId) -> bool {
        self.freq.remove(page);
        match self.store.remove(page) {
            Some(removed) => {
                if O::ENABLED {
                    self.obs.evict(
                        removed.page,
                        removed.size,
                        removed.value,
                        EvictReason::Invalidate,
                    );
                }
                true
            }
            None => false,
        }
    }

    /// Serializes the engine's mutable state — inflation `L`, the store,
    /// and the in-cache reference count of every resident — for a
    /// snapshot. Capacity, layout and observer are configuration and are
    /// not encoded.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        put_f64(out, self.inflation);
        self.store.encode_state(out);
        // Frequency counts only exist for residents (In-Cache LFU), so
        // one u32 per heap slot, in the store's canonical slot order.
        for slot in self.store.iter() {
            put_u32(out, self.freq.get(slot.page));
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state),
    /// replacing the engine's current contents. The engine keeps its own
    /// capacity, layout and observer.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on truncated or corrupt input; the
    /// engine's contents are then unspecified — discard it.
    pub fn decode_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let inflation = r.read_f64()?;
        let Self { store, freq, .. } = self;
        freq.clear();
        store.decode_state(r)?;
        for slot in store.iter() {
            let f = r.read_u32()?;
            if f != 0 {
                freq.set(slot.page, f);
            }
        }
        self.inflation = inflation;
        Ok(())
    }

    /// Evicts least-valuable pages until `size` fits, raising `L` to the
    /// value of the last eviction (classic greedy-dual replacement).
    /// Appends the victims to `evicted`.
    fn make_room(&mut self, size: Bytes, evicted: &mut Vec<PageId>) {
        while self.store.free() < size {
            let victim = self
                .store
                .pop_min()
                .expect("cache cannot be empty while free < size <= capacity");
            self.inflation = victim.value;
            self.freq.remove(victim.page);
            if O::ENABLED {
                self.obs
                    .evict(victim.page, victim.size, victim.value, EvictReason::Access);
            }
            evicted.push(victim.page);
        }
    }

    /// Admits a page valued `value` only over strictly-less-valuable
    /// residents; raises `L` on evictions (reported under `reason`,
    /// appended to `evicted`). Returns `false` if the page was declined.
    fn try_admit(
        &mut self,
        page: &PageRef,
        value: f64,
        reason: EvictReason,
        evicted: &mut Vec<PageId>,
    ) -> bool {
        if page.size > self.store.capacity() {
            return false;
        }
        if self.store.free() < page.size {
            let reclaimable = self.store.free() + self.store.candidate_size_below(value);
            if reclaimable < page.size {
                return false;
            }
        }
        while self.store.free() < page.size {
            let victim = self
                .store
                .pop_min()
                .expect("candidate check guarantees enough evictable bytes");
            debug_assert!(victim.value < value);
            self.inflation = victim.value;
            self.freq.remove(victim.page);
            if O::ENABLED {
                self.obs
                    .evict(victim.page, victim.size, victim.value, reason);
            }
            evicted.push(victim.page);
        }
        self.store.insert(page.page, page.size, value);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pref(i: u32, size: u64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), 1.0)
    }

    #[test]
    fn hit_updates_frequency_and_value() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(100));
        let p = pref(1, 10);
        assert_eq!(
            e.access(&p, |f, l| l + f as f64, &mut ev),
            AccessOutcome::MissAdmitted
        );
        assert_eq!(e.frequency(p.page), 1);
        assert_eq!(e.store().value(p.page), Some(1.0));
        assert!(e.access(&p, |f, l| l + f as f64, &mut ev).is_hit());
        assert_eq!(e.frequency(p.page), 2);
        assert_eq!(e.store().value(p.page), Some(2.0));
    }

    #[test]
    fn eviction_raises_inflation() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(20));
        e.access(&pref(1, 10), |_, l| l + 1.0, &mut ev);
        e.access(&pref(2, 10), |_, l| l + 2.0, &mut ev);
        assert_eq!(e.inflation(), 0.0);
        // Page 3 forces one eviction: victim is page 1 (value 1.0).
        let out = e.access(&pref(3, 10), |_, l| l + 5.0, &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev, vec![PageId::new(1)]);
        assert_eq!(e.inflation(), 1.0);
        // New insertions start from L: value = 1.0 + 5.0.
        assert_eq!(e.store().value(PageId::new(3)), Some(6.0));
    }

    #[test]
    fn frequency_discarded_on_eviction() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(20));
        let p1 = pref(1, 10);
        e.access(&p1, |f, l| l + f as f64, &mut ev);
        e.access(&p1, |f, l| l + f as f64, &mut ev);
        assert_eq!(e.frequency(p1.page), 2);
        e.access(&pref(2, 10), |_, l| l + 10.0, &mut ev);
        e.access(&pref(3, 10), |_, l| l + 10.0, &mut ev); // evicts page 1
        assert_eq!(e.frequency(p1.page), 0);
        // Re-access restarts at f = 1 (In-Cache LFU).
        e.access(&p1, |f, l| l + f as f64, &mut ev);
        assert_eq!(e.frequency(p1.page), 1);
    }

    #[test]
    fn oversized_page_bypassed() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(10));
        assert_eq!(
            e.access(&pref(1, 11), |_, l| l + 1.0, &mut ev),
            AccessOutcome::MissBypassed
        );
        assert_eq!(e.store().len(), 0);
    }

    #[test]
    fn gated_access_declines_low_value() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(20));
        e.access(&pref(1, 10), |_, l| l + 5.0, &mut ev);
        e.access(&pref(2, 10), |_, l| l + 5.0, &mut ev);
        // Value 1.0 < both residents: declined.
        assert_eq!(
            e.access_gated(&pref(3, 10), |_, l| l + 1.0, &mut ev),
            AccessOutcome::MissBypassed
        );
        assert!(!e.store().contains(PageId::new(3)));
        // Value 9.0 beats one resident: admitted.
        let out = e.access_gated(&pref(4, 10), |_, l| l + 9.0, &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn gated_access_hits_like_normal() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(20));
        e.access_gated(&pref(1, 10), |f, l| l + f as f64, &mut ev);
        assert!(e
            .access_gated(&pref(1, 10), |f, l| l + f as f64, &mut ev)
            .is_hit());
        assert_eq!(e.frequency(PageId::new(1)), 2);
    }

    #[test]
    fn push_valued_admission_rules() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(30));
        // Free space: no eviction needed.
        assert!(e.push_valued(&pref(1, 10), 2.0, &mut ev));
        assert!(ev.is_empty());
        assert!(e.push_valued(&pref(2, 20), 3.0, &mut ev));
        assert!(ev.is_empty());
        // Full. New page worth less than all residents: declined.
        assert!(!e.push_valued(&pref(3, 10), 1.0, &mut ev));
        // Worth more than page 1 but candidates too small for 20 bytes.
        assert!(!e.push_valued(&pref(4, 20), 2.5, &mut ev));
        // Worth more than page 1, fits in its 10 bytes.
        assert!(e.push_valued(&pref(5, 10), 2.5, &mut ev));
        assert_eq!(ev, vec![PageId::new(1)]);
        assert_eq!(e.inflation(), 2.0);
        // Already cached: no-op success.
        assert!(e.push_valued(&pref(5, 10), 9.9, &mut ev));
        assert!(ev.is_empty());
        // Larger than the whole cache: declined.
        assert!(!e.push_valued(&pref(6, 31), 99.0, &mut ev));
    }

    #[test]
    fn pushed_pages_start_at_zero_frequency() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(30));
        e.push_valued(&pref(1, 10), 2.0, &mut ev);
        assert_eq!(e.frequency(PageId::new(1)), 0);
        assert!(e
            .access(&pref(1, 10), |f, l| l + f as f64, &mut ev)
            .is_hit());
        assert_eq!(e.frequency(PageId::new(1)), 1);
    }

    #[test]
    fn observer_sees_admissions_and_evictions() {
        use pscd_obs::{SharedObserver, StatsObserver};
        use pscd_types::ServerId;

        let mut ev = Vec::new();
        let shared = SharedObserver::new(StatsObserver::new());
        let mut e =
            GreedyDualEngine::with_observer(Bytes::new(20), shared.handle(ServerId::new(5)));
        e.access(&pref(1, 10), |_, l| l + 1.0, &mut ev);
        e.access(&pref(2, 10), |_, l| l + 2.0, &mut ev);
        e.access(&pref(3, 10), |_, l| l + 5.0, &mut ev); // evicts page 1 (access)
        e.push_valued(&pref(4, 10), 9.0, &mut ev); // evicts page 2 (push), admits via push
        e.evict(PageId::new(4)); // invalidate
        drop(e);
        let stats = shared.try_unwrap().unwrap();
        let r = stats.registry();
        assert_eq!(r.counter("admit.access"), 3);
        assert_eq!(r.counter("admit.push"), 1);
        assert_eq!(r.counter("evict.access"), 1);
        assert_eq!(r.counter("evict.push"), 1);
        assert_eq!(r.counter("evict.invalidate"), 1);
        assert_eq!(r.bytes("bytes.evicted"), 30);
        // The eviction-value histogram saw the victims' dying values.
        assert_eq!(r.histogram("evict.value").unwrap().count(), 3);
    }

    #[test]
    fn revalue_and_evict() {
        let mut ev = Vec::new();
        let mut e = GreedyDualEngine::new(Bytes::new(30));
        e.access(&pref(1, 10), |_, l| l + 1.0, &mut ev);
        assert!(e.revalue(PageId::new(1), 7.0));
        assert_eq!(e.store().value(PageId::new(1)), Some(7.0));
        assert!(e.evict(PageId::new(1)));
        assert!(!e.evict(PageId::new(1)));
        assert!(!e.revalue(PageId::new(1), 1.0));
    }

    #[test]
    fn dense_engine_matches_sparse() {
        let mut ev_s = Vec::new();
        let mut ev_d = Vec::new();
        let mut sparse = GreedyDualEngine::new(Bytes::new(40));
        let mut dense: GreedyDualEngine = GreedyDualEngine::with_layout(
            Bytes::new(40),
            Layout::Dense { page_count: 32 },
            ObsHandle::disabled(),
        );
        let mut x = 0x1234_5678u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2_000 {
            let p = pref((rng() % 32) as u32, rng() % 15 + 1);
            match rng() % 3 {
                0 => {
                    let a = sparse.access(&p, |f, l| l + f as f64, &mut ev_s);
                    let b = dense.access(&p, |f, l| l + f as f64, &mut ev_d);
                    assert_eq!(a, b);
                }
                1 => {
                    let w = (rng() % 8) as f64;
                    assert_eq!(
                        sparse.push_valued(&p, w, &mut ev_s),
                        dense.push_valued(&p, w, &mut ev_d)
                    );
                }
                _ => {
                    assert_eq!(sparse.evict(p.page), dense.evict(p.page));
                }
            }
            assert_eq!(ev_s, ev_d);
            assert_eq!(sparse.inflation(), dense.inflation());
            assert_eq!(sparse.store().used(), dense.store().used());
        }
    }
}
