//! The access-time replacement-policy abstraction.

use std::fmt;

use pscd_types::{Bytes, PageId};

/// Everything a policy needs to know about a page at decision time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRef {
    /// The page being accessed or pushed.
    pub page: PageId,
    /// Its size, `s(p)`.
    pub size: Bytes,
    /// The cost to fetch it from the publisher, `c(p)`.
    pub cost: f64,
}

impl PageRef {
    /// Creates a page reference.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `cost` is not a positive finite number —
    /// both would poison the `c(p)/s(p)` value terms.
    pub fn new(page: PageId, size: Bytes, cost: f64) -> Self {
        assert!(!size.is_zero(), "page size must be positive");
        assert!(
            cost.is_finite() && cost > 0.0,
            "fetch cost must be positive and finite"
        );
        Self { page, size, cost }
    }
}

/// What happened when a page was accessed through a cache.
///
/// Evicted pages are reported through the caller-provided scratch buffer
/// of the operation that produced the outcome (see
/// [`CachePolicy::access`]), not carried here — keeping the outcome a
/// plain enum is what lets the replay hot loop run without heap
/// allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page was served from the cache.
    Hit,
    /// The page was fetched from the publisher and admitted to the cache,
    /// evicting the pages listed in the operation's scratch buffer
    /// (possibly none).
    MissAdmitted,
    /// The page was fetched and forwarded to the user without caching it
    /// (too large, or not valuable enough under the policy).
    MissBypassed,
}

impl AccessOutcome {
    /// `true` for cache hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// `true` if the access required fetching from the publisher.
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }
}

/// An access-time cache replacement policy (the classic caching model: all
/// placement happens when users request pages).
///
/// Implementations in this crate: [`Lru`](crate::Lru),
/// [`Gds`](crate::Gds), [`LfuDa`](crate::LfuDa) and the paper's baseline
/// [`GdStar`](crate::GdStar).
pub trait CachePolicy: fmt::Debug {
    /// Short stable identifier (`"GD*"`, `"LRU"`, …) used in reports.
    fn name(&self) -> &'static str;

    /// Records an access to `page`, updating cache state and (on a miss)
    /// performing placement/replacement. `evicted` is a caller-owned
    /// scratch buffer: it is cleared on entry and holds the evicted pages
    /// on return (empty unless the outcome is
    /// [`AccessOutcome::MissAdmitted`]).
    fn access(&mut self, page: &PageRef, evicted: &mut Vec<PageId>) -> AccessOutcome;

    /// `true` if the page is currently cached.
    fn contains(&self, page: PageId) -> bool;

    /// Total capacity.
    fn capacity(&self) -> Bytes;

    /// Bytes in use.
    fn used(&self) -> Bytes;

    /// Number of cached pages.
    fn len(&self) -> usize;

    /// `true` if the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops `page` from the cache (e.g. its content became stale because
    /// a newer version was published). Returns `true` if it was cached.
    /// Policy bookkeeping for *other* pages is unaffected.
    fn invalidate(&mut self, page: PageId) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Hit.is_miss());
        assert!(AccessOutcome::MissAdmitted.is_miss());
        assert!(AccessOutcome::MissBypassed.is_miss());
    }

    #[test]
    fn page_ref_validates() {
        let p = PageRef::new(PageId::new(1), Bytes::new(10), 2.0);
        assert_eq!(p.size, Bytes::new(10));
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn page_ref_rejects_zero_size() {
        let _ = PageRef::new(PageId::new(1), Bytes::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "cost must be positive")]
    fn page_ref_rejects_bad_cost() {
        let _ = PageRef::new(PageId::new(1), Bytes::new(1), f64::NAN);
    }
}
