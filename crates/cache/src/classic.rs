//! Classic access-time replacement policies: LRU, GDS, LFU-DA, GD*.
//!
//! Each policy is generic over an [`Observer`] (defaulting to the
//! zero-cost [`NullObserver`]); `with_observer` constructors route the
//! underlying engine's admission/eviction events to an [`ObsHandle`],
//! and `with_layout` constructors additionally select the state
//! [`Layout`] (sparse hash tables vs. dense per-ordinal arrays).

use pscd_obs::{NullObserver, ObsHandle, Observer};
use pscd_types::{Bytes, PageId};

use crate::snapshot::{SnapshotError, SnapshotReader};
use crate::{AccessOutcome, CachePolicy, GreedyDualEngine, Layout, PageRef};

macro_rules! delegate_policy_queries {
    () => {
        fn contains(&self, page: PageId) -> bool {
            self.engine.store().contains(page)
        }

        fn invalidate(&mut self, page: PageId) -> bool {
            self.engine.evict(page)
        }

        fn capacity(&self) -> Bytes {
            self.engine.store().capacity()
        }

        fn used(&self) -> Bytes {
            self.engine.store().used()
        }

        fn len(&self) -> usize {
            self.engine.store().len()
        }
    };
}

macro_rules! snapshot_delegate {
    ($name:ident) => {
        impl<O: Observer> $name<O> {
            /// Serializes the cache's mutable state for a snapshot; tuning
            /// parameters (capacity, β) are configuration, not state.
            pub fn encode_state(&self, out: &mut Vec<u8>) {
                self.engine.encode_state(out);
            }

            /// Restores state captured by
            /// [`encode_state`](Self::encode_state), replacing the cache's
            /// current contents.
            ///
            /// # Errors
            ///
            /// Returns a [`SnapshotError`] on truncated or corrupt input;
            /// the cache's contents are then unspecified — discard it.
            pub fn decode_state(
                &mut self,
                r: &mut SnapshotReader<'_>,
            ) -> Result<(), SnapshotError> {
                self.engine.decode_state(r)
            }
        }
    };
}

snapshot_delegate!(Lru);
snapshot_delegate!(Gds);
snapshot_delegate!(LfuDa);
snapshot_delegate!(GdStar);

macro_rules! manual_clone {
    ($name:ident { $($extra:ident),* }) => {
        // Manual impl: `derive(Clone)` would demand `O: Clone`, which
        // observers don't promise — the engine clones for any `O`.
        impl<O: Observer> Clone for $name<O> {
            fn clone(&self) -> Self {
                Self {
                    engine: self.engine.clone(),
                    $($extra: self.$extra,)*
                }
            }
        }
    };
}

/// Least-recently-used replacement, expressed in the greedy-dual framework
/// as `V(p) = L + 1` (Cao & Irani's classic observation).
///
/// # Examples
///
/// ```
/// use pscd_cache::{CachePolicy, Lru, PageRef};
/// use pscd_types::{Bytes, PageId};
///
/// let mut lru = Lru::new(Bytes::new(20));
/// let mut evicted = Vec::new();
/// let a = PageRef::new(PageId::new(1), Bytes::new(10), 1.0);
/// let b = PageRef::new(PageId::new(2), Bytes::new(10), 1.0);
/// let c = PageRef::new(PageId::new(3), Bytes::new(10), 1.0);
/// lru.access(&a, &mut evicted);
/// lru.access(&b, &mut evicted);
/// lru.access(&a, &mut evicted); // refresh a
/// lru.access(&c, &mut evicted); // evicts b, the least recently used
/// assert!(lru.contains(a.page) && lru.contains(c.page) && !lru.contains(b.page));
/// ```
#[derive(Debug)]
pub struct Lru<O: Observer = NullObserver> {
    engine: GreedyDualEngine<O>,
}

manual_clone!(Lru {});

impl Lru {
    /// Creates an LRU cache with the given capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self::with_observer(capacity, ObsHandle::disabled())
    }
}

impl<O: Observer> Lru<O> {
    /// Creates an LRU cache reporting cache decisions to `obs`.
    pub fn with_observer(capacity: Bytes, obs: ObsHandle<O>) -> Self {
        Self::with_layout(capacity, Layout::Sparse, obs)
    }

    /// Creates an LRU cache with an explicit state [`Layout`].
    pub fn with_layout(capacity: Bytes, layout: Layout, obs: ObsHandle<O>) -> Self {
        Self {
            engine: GreedyDualEngine::with_layout(capacity, layout, obs),
        }
    }
}

impl<O: Observer> CachePolicy for Lru<O> {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn access(&mut self, page: &PageRef, evicted: &mut Vec<PageId>) -> AccessOutcome {
        self.engine.access(page, |_, l| l + 1.0, evicted)
    }

    delegate_policy_queries!();
}

/// GreedyDual-Size (Cao & Irani, USITS'97): `V(p) = L + c(p)/s(p)`.
#[derive(Debug)]
pub struct Gds<O: Observer = NullObserver> {
    engine: GreedyDualEngine<O>,
}

manual_clone!(Gds {});

impl Gds {
    /// Creates a GDS cache with the given capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self::with_observer(capacity, ObsHandle::disabled())
    }
}

impl<O: Observer> Gds<O> {
    /// Creates a GDS cache reporting cache decisions to `obs`.
    pub fn with_observer(capacity: Bytes, obs: ObsHandle<O>) -> Self {
        Self::with_layout(capacity, Layout::Sparse, obs)
    }

    /// Creates a GDS cache with an explicit state [`Layout`].
    pub fn with_layout(capacity: Bytes, layout: Layout, obs: ObsHandle<O>) -> Self {
        Self {
            engine: GreedyDualEngine::with_layout(capacity, layout, obs),
        }
    }
}

impl<O: Observer> CachePolicy for Gds<O> {
    fn name(&self) -> &'static str {
        "GDS"
    }

    fn access(&mut self, page: &PageRef, evicted: &mut Vec<PageId>) -> AccessOutcome {
        let w = page.cost / page.size.as_f64();
        self.engine.access(page, |_, l| l + w, evicted)
    }

    delegate_policy_queries!();
}

/// LFU with dynamic aging: `V(p) = L + f(p)`, with in-cache reference
/// counts (counts are discarded at eviction).
#[derive(Debug)]
pub struct LfuDa<O: Observer = NullObserver> {
    engine: GreedyDualEngine<O>,
}

manual_clone!(LfuDa {});

impl LfuDa {
    /// Creates an LFU-DA cache with the given capacity.
    pub fn new(capacity: Bytes) -> Self {
        Self::with_observer(capacity, ObsHandle::disabled())
    }
}

impl<O: Observer> LfuDa<O> {
    /// Creates an LFU-DA cache reporting cache decisions to `obs`.
    pub fn with_observer(capacity: Bytes, obs: ObsHandle<O>) -> Self {
        Self::with_layout(capacity, Layout::Sparse, obs)
    }

    /// Creates an LFU-DA cache with an explicit state [`Layout`].
    pub fn with_layout(capacity: Bytes, layout: Layout, obs: ObsHandle<O>) -> Self {
        Self {
            engine: GreedyDualEngine::with_layout(capacity, layout, obs),
        }
    }
}

impl<O: Observer> CachePolicy for LfuDa<O> {
    fn name(&self) -> &'static str {
        "LFU-DA"
    }

    fn access(&mut self, page: &PageRef, evicted: &mut Vec<PageId>) -> AccessOutcome {
        self.engine.access(page, |f, l| l + f as f64, evicted)
    }

    delegate_policy_queries!();
}

/// GreedyDual\* (Jin & Bestavros), the paper's access-time baseline:
///
/// ```text
/// V(p) = L + (f(p) · c(p) / s(p))^(1/β)              (eq. 1)
/// ```
///
/// `β` balances long-term popularity against short-term temporal
/// correlation; the paper tunes it per trace (β = 2 for NEWS; see §5.1).
/// Reference counts follow In-Cache LFU (discarded at eviction).
///
/// # Examples
///
/// ```
/// use pscd_cache::{CachePolicy, GdStar, PageRef};
/// use pscd_types::{Bytes, PageId};
///
/// let mut gd = GdStar::new(Bytes::new(100), 2.0);
/// let mut evicted = Vec::new();
/// let page = PageRef::new(PageId::new(1), Bytes::new(10), 4.0);
/// assert!(gd.access(&page, &mut evicted).is_miss());
/// assert!(gd.access(&page, &mut evicted).is_hit());
/// ```
#[derive(Debug)]
pub struct GdStar<O: Observer = NullObserver> {
    engine: GreedyDualEngine<O>,
    beta: f64,
}

manual_clone!(GdStar { beta });

impl GdStar {
    /// Creates a GD\* cache.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn new(capacity: Bytes, beta: f64) -> Self {
        Self::with_observer(capacity, beta, ObsHandle::disabled())
    }
}

impl<O: Observer> GdStar<O> {
    /// Creates a GD\* cache reporting cache decisions to `obs`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn with_observer(capacity: Bytes, beta: f64, obs: ObsHandle<O>) -> Self {
        Self::with_layout(capacity, beta, Layout::Sparse, obs)
    }

    /// Creates a GD\* cache with an explicit state [`Layout`].
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    pub fn with_layout(capacity: Bytes, beta: f64, layout: Layout, obs: ObsHandle<O>) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        Self {
            engine: GreedyDualEngine::with_layout(capacity, layout, obs),
            beta,
        }
    }

    /// The configured β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The current inflation value `L` (exposed for tests/diagnostics).
    pub fn inflation(&self) -> f64 {
        self.engine.inflation()
    }
}

/// GD\*'s weight term `(f·c/s)^(1/β)`.
pub(crate) fn gdstar_weight(freq: f64, cost: f64, size: Bytes, beta: f64) -> f64 {
    let base = (freq.max(0.0) * cost / size.as_f64()).max(0.0);
    base.powf(1.0 / beta)
}

impl<O: Observer> CachePolicy for GdStar<O> {
    fn name(&self) -> &'static str {
        "GD*"
    }

    fn access(&mut self, page: &PageRef, evicted: &mut Vec<PageId>) -> AccessOutcome {
        let (cost, size, beta) = (page.cost, page.size, self.beta);
        self.engine.access(
            page,
            |f, l| l + gdstar_weight(f as f64, cost, size, beta),
            evicted,
        )
    }

    delegate_policy_queries!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pref(i: u32, size: u64, cost: f64) -> PageRef {
        PageRef::new(PageId::new(i), Bytes::new(size), cost)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut ev = Vec::new();
        let mut lru = Lru::new(Bytes::new(30));
        lru.access(&pref(1, 10, 1.0), &mut ev);
        lru.access(&pref(2, 10, 1.0), &mut ev);
        lru.access(&pref(3, 10, 1.0), &mut ev);
        lru.access(&pref(1, 10, 1.0), &mut ev); // refresh 1
        let out = lru.access(&pref(4, 10, 1.0), &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev, vec![PageId::new(2)]);
        assert_eq!(lru.name(), "LRU");
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.used(), Bytes::new(30));
        assert_eq!(lru.capacity(), Bytes::new(30));
    }

    #[test]
    fn gds_prefers_cheap_small_eviction() {
        let mut ev = Vec::new();
        let mut gds = Gds::new(Bytes::new(20));
        // Page 1: c/s = 0.1 (cheap to refetch); page 2: c/s = 1.0.
        gds.access(&pref(1, 10, 1.0), &mut ev);
        gds.access(&pref(2, 10, 10.0), &mut ev);
        let out = gds.access(&pref(3, 10, 5.0), &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev, vec![PageId::new(1)]);
        assert_eq!(gds.name(), "GDS");
    }

    #[test]
    fn lfu_da_protects_frequent_pages() {
        let mut ev = Vec::new();
        let mut lfu = LfuDa::new(Bytes::new(20));
        let hot = pref(1, 10, 1.0);
        lfu.access(&hot, &mut ev);
        lfu.access(&hot, &mut ev);
        lfu.access(&hot, &mut ev); // f = 3
        lfu.access(&pref(2, 10, 1.0), &mut ev); // f = 1
        let out = lfu.access(&pref(3, 10, 1.0), &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev, vec![PageId::new(2)]);
        assert!(lfu.contains(PageId::new(1)));
        assert_eq!(lfu.name(), "LFU-DA");
    }

    #[test]
    fn gdstar_weight_formula() {
        // (f*c/s)^(1/beta): f=2, c=8, s=4 -> 4^(1/2) = 2.
        assert_eq!(gdstar_weight(2.0, 8.0, Bytes::new(4), 2.0), 2.0);
        // beta = 1 degenerates to GDS-with-frequency.
        assert_eq!(gdstar_weight(3.0, 2.0, Bytes::new(6), 1.0), 1.0);
        // Negative/zero frequency clamps to zero weight.
        assert_eq!(gdstar_weight(-1.0, 2.0, Bytes::new(6), 1.0), 0.0);
    }

    #[test]
    fn gdstar_combines_frequency_and_cost() {
        let mut ev = Vec::new();
        let mut gd = GdStar::new(Bytes::new(20), 2.0);
        assert_eq!(gd.beta(), 2.0);
        // Page 1 accessed twice (f=2, c/s=1): weight sqrt(2) ≈ 1.41.
        let p1 = pref(1, 10, 10.0);
        gd.access(&p1, &mut ev);
        gd.access(&p1, &mut ev);
        // Page 2 once, cheap (f=1, c/s=0.1): weight ≈ 0.32.
        gd.access(&pref(2, 10, 1.0), &mut ev);
        // Page 3 arrives: evicts page 2 (lowest value).
        let out = gd.access(&pref(3, 10, 5.0), &mut ev);
        assert_eq!(out, AccessOutcome::MissAdmitted);
        assert_eq!(ev, vec![PageId::new(2)]);
        // Inflation rose to page 2's value.
        assert!(gd.inflation() > 0.0);
    }

    #[test]
    fn gdstar_inflation_ages_old_pages() {
        let mut ev = Vec::new();
        let mut gd = GdStar::new(Bytes::new(20), 1.0);
        // Hot page with moderate value.
        let old = pref(1, 10, 2.0); // weight f*0.2
        gd.access(&old, &mut ev);
        // Fill and churn the other slot repeatedly with cheap pages.
        for i in 2..30 {
            gd.access(&pref(i, 10, 4.0), &mut ev);
        }
        // After enough churn, inflation L exceeds the old page's static
        // value and a newcomer evicts it even with f = 1.
        assert!(
            !gd.contains(PageId::new(1)),
            "aged-out page should eventually be evicted (L = {})",
            gd.inflation()
        );
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn gdstar_rejects_bad_beta() {
        let _ = GdStar::new(Bytes::new(10), 0.0);
    }

    #[test]
    fn policies_are_object_safe() {
        let mut ev = Vec::new();
        let mut policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(Lru::new(Bytes::new(10))),
            Box::new(Gds::new(Bytes::new(10))),
            Box::new(LfuDa::new(Bytes::new(10))),
            Box::new(GdStar::new(Bytes::new(10), 2.0)),
        ];
        for p in &mut policies {
            assert!(p.is_empty());
            p.access(&pref(1, 5, 1.0), &mut ev);
            assert_eq!(p.len(), 1);
        }
    }

    #[test]
    fn dense_layout_policies_match_sparse() {
        let mut ev_s = Vec::new();
        let mut ev_d = Vec::new();
        let dense = Layout::Dense { page_count: 40 };
        let mut pairs: Vec<(Box<dyn CachePolicy>, Box<dyn CachePolicy>)> = vec![
            (
                Box::new(Lru::new(Bytes::new(50))),
                Box::new(Lru::with_layout(
                    Bytes::new(50),
                    dense,
                    ObsHandle::disabled(),
                )),
            ),
            (
                Box::new(GdStar::new(Bytes::new(50), 2.0)),
                Box::new(GdStar::with_layout(
                    Bytes::new(50),
                    2.0,
                    dense,
                    ObsHandle::disabled(),
                )),
            ),
        ];
        let mut x = 0xdead_beefu64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..1_000 {
            let p = pref((rng() % 40) as u32, rng() % 20 + 1, (rng() % 9 + 1) as f64);
            for (sparse, dense) in &mut pairs {
                assert_eq!(
                    sparse.access(&p, &mut ev_s),
                    dense.access(&p, &mut ev_d),
                    "{}",
                    sparse.name()
                );
                assert_eq!(ev_s, ev_d);
            }
        }
    }

    #[test]
    fn observed_policy_reports_events() {
        use pscd_obs::{SharedObserver, StatsObserver};
        use pscd_types::ServerId;

        let mut ev = Vec::new();
        let shared = SharedObserver::new(StatsObserver::new());
        let mut lru = Lru::with_observer(Bytes::new(20), shared.handle(ServerId::new(0)));
        lru.access(&pref(1, 10, 1.0), &mut ev);
        lru.access(&pref(2, 10, 1.0), &mut ev);
        lru.access(&pref(3, 10, 1.0), &mut ev); // evicts page 1
        lru.invalidate(PageId::new(3));
        drop(lru);
        let stats = shared.try_unwrap().unwrap();
        assert_eq!(stats.registry().counter("admit.access"), 3);
        assert_eq!(stats.registry().counter("evict.access"), 1);
        assert_eq!(stats.registry().counter("evict.invalidate"), 1);
    }
}
