//! Property suite for the dense-layout store snapshot codec: after any
//! random churn sequence, `encode_state` → `decode_state` must
//! reproduce a store that is *observably identical* — same population,
//! same values and sizes, same eviction order under `pop_min`, same
//! canonical re-encoding — and must keep behaving identically under
//! further churn.

use proptest::prelude::*;

use pscd_cache::{CacheStore, SnapshotReader};
use pscd_types::{Bytes, PageId};

const UNIVERSE: u32 = 48;

/// One random store operation over the fixed page universe.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert (or reinsert) a page; size and value derive from the seed.
    Insert(u32, u64, u32),
    /// Re-stamp an existing page with a new value.
    Update(u32, u32),
    /// Remove a page.
    Remove(u32),
    /// Evict the current minimum.
    PopMin,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..UNIVERSE, 1u64..64, 0u32..1_000).prop_map(|(p, s, v)| Op::Insert(p, s, v)),
        2 => (0..UNIVERSE, 0u32..1_000).prop_map(|(p, v)| Op::Update(p, v)),
        2 => (0..UNIVERSE).prop_map(Op::Remove),
        1 => Just(Op::PopMin),
    ]
}

fn apply(store: &mut CacheStore, op: Op) {
    match op {
        Op::Insert(p, s, v) => store.insert(PageId::new(p), Bytes::new(s), f64::from(v) * 0.5),
        Op::Update(p, v) => {
            store.update_value(PageId::new(p), f64::from(v) * 0.5);
        }
        Op::Remove(p) => {
            store.remove(PageId::new(p));
        }
        Op::PopMin => {
            store.pop_min();
        }
    }
}

fn encode(store: &CacheStore) -> Vec<u8> {
    let mut out = Vec::new();
    store.encode_state(&mut out);
    out
}

proptest! {
    /// Encode → decode over a random churn history yields a store with
    /// identical observable state, identical canonical bytes, and
    /// identical behavior under further identical churn.
    #[test]
    fn dense_store_round_trips_after_random_churn(
        history in proptest::collection::vec(op_strategy(), 0..200),
        epilogue in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let mut original = CacheStore::dense(Bytes::new(u64::MAX), UNIVERSE as usize);
        for &op in &history {
            apply(&mut original, op);
        }

        let blob = encode(&original);
        let mut restored = CacheStore::dense(Bytes::new(u64::MAX), UNIVERSE as usize);
        // Restore must also overwrite pre-existing contents.
        restored.insert(PageId::new(0), Bytes::new(3), 1.0);
        let mut r = SnapshotReader::new(&blob);
        restored.decode_state(&mut r).unwrap();
        prop_assert!(r.is_empty(), "codec left trailing bytes");

        prop_assert_eq!(restored.len(), original.len());
        prop_assert_eq!(restored.used(), original.used());
        for p in 0..UNIVERSE {
            let page = PageId::new(p);
            prop_assert_eq!(restored.contains(page), original.contains(page));
            prop_assert_eq!(restored.value(page), original.value(page));
            prop_assert_eq!(restored.size(page), original.size(page));
        }
        // Canonical form: identical stores encode to identical bytes.
        prop_assert_eq!(&encode(&restored), &blob);

        // Behavioral equivalence: further identical churn (including
        // tie-breaking via stamps) diverges nowhere.
        for &op in &epilogue {
            apply(&mut original, op);
            apply(&mut restored, op);
        }
        let mut a = original;
        let mut b = restored;
        prop_assert_eq!(&encode(&a), &encode(&b));
        loop {
            let (x, y) = (a.pop_min(), b.pop_min());
            prop_assert_eq!(x, y, "eviction order diverged after restore");
            if x.is_none() {
                break;
            }
        }
    }

    /// Corrupt prefixes never panic: every truncation of a valid blob is
    /// rejected with an error (never a silently short store).
    #[test]
    fn truncated_snapshots_are_rejected(
        history in proptest::collection::vec(op_strategy(), 1..100),
        cut in 0usize..100,
    ) {
        let mut store = CacheStore::dense(Bytes::new(u64::MAX), UNIVERSE as usize);
        for &op in &history {
            apply(&mut store, op);
        }
        let blob = encode(&store);
        // Clamp instead of discarding: every case must cut inside the
        // blob (the header alone is 12 bytes, so len > 1 always holds).
        let cut = cut % blob.len();
        let mut victim = CacheStore::dense(Bytes::new(u64::MAX), UNIVERSE as usize);
        let mut r = SnapshotReader::new(&blob[..cut]);
        prop_assert!(victim.decode_state(&mut r).is_err());
    }
}
