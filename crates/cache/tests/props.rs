//! Property tests: the heap-based greedy-dual engine must agree with a
//! naive O(n²) reference implementation of the GD\* pseudo-code.

use std::collections::HashMap;

use proptest::prelude::*;

use pscd_cache::{AccessOutcome, CachePolicy, GdStar, Layout, PageRef};
use pscd_obs::ObsHandle;
use pscd_types::{Bytes, PageId};

/// Naive reference GD\*: linear scans instead of heaps, literally
/// transcribing the paper's pseudo-code.
#[derive(Debug)]
struct ReferenceGdStar {
    capacity: u64,
    used: u64,
    inflation: f64,
    beta: f64,
    /// page -> (size, value, freq, insertion_order_for_ties)
    pages: HashMap<u32, (u64, f64, u32, u64)>,
    next_order: u64,
}

impl ReferenceGdStar {
    fn new(capacity: u64, beta: f64) -> Self {
        Self {
            capacity,
            used: 0,
            inflation: 0.0,
            beta,
            pages: HashMap::new(),
            next_order: 0,
        }
    }

    fn weight(&self, freq: u32, cost: f64, size: u64) -> f64 {
        (freq as f64 * cost / size as f64).powf(1.0 / self.beta)
    }

    fn access(&mut self, page: u32, size: u64, cost: f64) -> bool {
        if let Some(&(psize, _, freq, _)) = self.pages.get(&page) {
            let freq = freq + 1;
            let value = self.inflation + self.weight(freq, cost, psize);
            let order = self.next_order;
            self.next_order += 1;
            self.pages.insert(page, (psize, value, freq, order));
            return true;
        }
        if size > self.capacity {
            return false;
        }
        while self.capacity - self.used < size {
            // Evict the min-value page (ties: oldest order).
            let victim = *self
                .pages
                .iter()
                .min_by(|a, b| {
                    a.1 .1
                        .partial_cmp(&b.1 .1)
                        .unwrap()
                        .then(a.1 .3.cmp(&b.1 .3))
                })
                .map(|(k, _)| k)
                .expect("nonempty while under pressure");
            let (vsize, vvalue, _, _) = self.pages.remove(&victim).unwrap();
            self.used -= vsize;
            self.inflation = vvalue;
        }
        let value = self.inflation + self.weight(1, cost, size);
        let order = self.next_order;
        self.next_order += 1;
        self.pages.insert(page, (size, value, 1, order));
        self.used += size;
        false
    }
}

fn page_params(page: u32) -> (u64, f64) {
    (16 + (page as u64 * 31) % 200, 1.0 + (page % 4) as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same hits, same cache contents, same byte usage — on arbitrary
    /// access streams, in both sparse and dense layouts.
    #[test]
    fn engine_matches_reference_gdstar(
        accesses in proptest::collection::vec(0u32..30, 1..300),
        capacity in 100u64..1500,
        beta in proptest::sample::select(vec![0.5f64, 1.0, 2.0]),
    ) {
        let mut real = GdStar::new(Bytes::new(capacity), beta);
        let mut dense = GdStar::with_layout(
            Bytes::new(capacity),
            beta,
            Layout::Dense { page_count: 30 },
            ObsHandle::disabled(),
        );
        let mut reference = ReferenceGdStar::new(capacity, beta);
        let mut scratch = Vec::new();
        let mut dense_scratch = Vec::new();
        for &page in &accesses {
            let (size, cost) = page_params(page);
            let expected_hit = reference.access(page, size, cost);
            let pref = PageRef::new(PageId::new(page), Bytes::new(size), cost);
            let outcome = real.access(&pref, &mut scratch);
            let dense_outcome = dense.access(&pref, &mut dense_scratch);
            prop_assert_eq!(
                outcome.is_hit(),
                expected_hit,
                "divergence at page {} (size {}, cost {})",
                page, size, cost
            );
            prop_assert_eq!(outcome, dense_outcome);
            prop_assert_eq!(&scratch, &dense_scratch);
        }
        // Final state agrees exactly.
        prop_assert_eq!(real.used().as_u64(), reference.used);
        prop_assert_eq!(real.len(), reference.pages.len());
        prop_assert_eq!(dense.used(), real.used());
        prop_assert_eq!(dense.len(), real.len());
        for (&page, &(..)) in &reference.pages {
            prop_assert!(real.contains(PageId::new(page)), "missing page {page}");
            prop_assert!(dense.contains(PageId::new(page)), "dense missing page {page}");
        }
    }

    /// The eviction list reported on a miss never contains the new page
    /// and frees at least the bytes needed.
    #[test]
    fn eviction_lists_are_consistent(
        accesses in proptest::collection::vec(0u32..40, 1..200),
        capacity in 100u64..1000,
    ) {
        let mut cache = GdStar::new(Bytes::new(capacity), 2.0);
        let mut evicted = Vec::new();
        for &page in &accesses {
            let (size, cost) = page_params(page);
            let before = cache.used();
            match cache.access(&PageRef::new(PageId::new(page), Bytes::new(size), cost), &mut evicted) {
                AccessOutcome::MissAdmitted => {
                    prop_assert!(!evicted.contains(&PageId::new(page)));
                    for victim in &evicted {
                        prop_assert!(!cache.contains(*victim));
                    }
                    prop_assert!(cache.used() <= capacity.into());
                    prop_assert!(cache.used() >= Bytes::new(size));
                }
                AccessOutcome::MissBypassed => {
                    prop_assert!(size > capacity);
                    prop_assert_eq!(cache.used(), before);
                }
                AccessOutcome::Hit => {
                    prop_assert_eq!(cache.used(), before);
                }
            }
        }
    }
}
