//! Workload configuration errors.

use std::error::Error;
use std::fmt;

/// Error returned when a workload configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A configuration field was outside its valid range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl WorkloadError {
    pub(crate) const fn invalid(field: &'static str, constraint: &'static str) -> Self {
        WorkloadError::InvalidConfig { field, constraint }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { field, constraint } => {
                write!(
                    f,
                    "invalid workload config: {field} must satisfy {constraint}"
                )
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = WorkloadError::invalid("total_pages", ">= distinct_pages");
        assert!(e.to_string().contains("total_pages"));
        assert!(e.to_string().contains(">= distinct_pages"));
    }
}
