//! Deterministic per-entity RNG substreams.
//!
//! The legacy generators thread one `StdRng` through every draw, which
//! makes the draw order — and therefore the whole workload — inherently
//! sequential. The substream scheme instead derives an independent child
//! seed for every *entity* (a page, an original, a multinomial chunk, a
//! (page → subscriptions) group) from the master seed, a domain constant,
//! and the entity's index. Each entity consumes only its own stream, so
//! entities can be generated in any order — including in parallel on the
//! worker pool — and the output is bit-identical to the sequential
//! reference **by construction** (proven by the `cold_differential`
//! suite).
//!
//! The derivation is a SplitMix64-style avalanche over
//! `(master, domain, index)`. The domain constants keep substreams of
//! different generation phases disjoint even when entity indices collide
//! (page 7's size draw must not correlate with page 7's request
//! placement).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// First-publish instants of original pages (one substream per original).
pub const PUB_TIME: u64 = 1;
/// The structural draws of the publishing stream: which originals get
/// updated (one sequential substream).
pub const PUB_STRUCT: u64 = 2;
/// Per-origin modification intervals (one substream per origin).
pub const PUB_INTERVAL: u64 = 3;
/// The count adjustment to `total_pages` (one sequential substream).
pub const PUB_ADJUST: u64 = 4;
/// Page sizes (one substream per page id).
pub const PUB_SIZE: u64 = 5;
/// The popularity-rank permutation (one sequential substream).
pub const REQ_RANK: u64 = 6;
/// The multinomial popularity draw (one substream per fixed-size chunk).
pub const REQ_ZIPF: u64 = 7;
/// Per-page request placement: times, server pools, picks (one substream
/// per page id).
pub const REQ_PAGE: u64 = 8;
/// Per-page subscription-quality draws (one substream per page id).
pub const SUBS: u64 = 9;

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: full-avalanche mixing of one word.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the child seed of substream `(domain, index)` under `master`.
///
/// Deterministic, and well-spread in all three inputs: flipping any bit
/// of any input avalanches through the two `mix` rounds.
pub fn substream(master: u64, domain: u64, index: u64) -> u64 {
    let domain_key = mix(master ^ domain.wrapping_add(1).wrapping_mul(GOLDEN));
    mix(domain_key ^ index.wrapping_add(1).wrapping_mul(GOLDEN))
}

/// An [`StdRng`] seeded on substream `(domain, index)` under `master`.
pub fn stream_rng(master: u64, domain: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(substream(master, domain, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn substreams_are_deterministic_and_distinct() {
        assert_eq!(substream(1, PUB_TIME, 0), substream(1, PUB_TIME, 0));
        assert_ne!(substream(1, PUB_TIME, 0), substream(1, PUB_TIME, 1));
        assert_ne!(substream(1, PUB_TIME, 0), substream(1, PUB_SIZE, 0));
        assert_ne!(substream(1, PUB_TIME, 0), substream(2, PUB_TIME, 0));
    }

    #[test]
    fn neighboring_indices_decorrelate() {
        // Crude avalanche check: child seeds of adjacent indices differ in
        // roughly half their bits.
        let mut total = 0u32;
        for i in 0..64u64 {
            let d = substream(42, REQ_PAGE, i) ^ substream(42, REQ_PAGE, i + 1);
            total += d.count_ones();
        }
        let mean = f64::from(total) / 64.0;
        assert!((24.0..40.0).contains(&mean), "mean bit flips {mean}");
    }

    #[test]
    fn stream_rngs_draw_independently() {
        let a: f64 = stream_rng(7, REQ_ZIPF, 0).random();
        let b: f64 = stream_rng(7, REQ_ZIPF, 1).random();
        assert_ne!(a, b);
        let a2: f64 = stream_rng(7, REQ_ZIPF, 0).random();
        assert_eq!(a, a2);
    }

    #[test]
    fn domain_constants_are_unique() {
        let all = [
            PUB_TIME,
            PUB_STRUCT,
            PUB_INTERVAL,
            PUB_ADJUST,
            PUB_SIZE,
            REQ_RANK,
            REQ_ZIPF,
            REQ_PAGE,
            SUBS,
        ];
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), all.len());
    }
}
