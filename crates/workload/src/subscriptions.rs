//! Subscription generation through the subscription-quality model (§4.3).

use pscd_pool::parallel_chunked;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

use pscd_types::{RequestTrace, SubscriptionTable, SubscriptionTableBuilder};

use crate::{seeds, WorkloadError};

/// Floor on a sampled per-pair subscription quality. Eq. 7 with `SQ <= 0.5`
/// draws `SQ_{i,j}` uniformly from `(0, 2·SQ]`, which is unbounded in
/// `1/SQ_{i,j}`; the floor caps a page's inferred subscription count at
/// 100× its request count, keeping the synthetic population finite without
/// affecting the achievable qualities the paper evaluates (SQ >= 0.25).
const MIN_PAIR_QUALITY: f64 = 0.01;

/// Page groups per pool job in the parallel fan-out. Purely a scheduling
/// granularity (each page has its own substream).
const GROUP_CHUNK: usize = 512;

/// Derives the per-(page, server) subscription counts from a request trace
/// using the paper's subscription-quality model (eq. 7):
///
/// * For each (page `i`, server `j`) with `P_{i,j}` requests, a local
///   quality `SQ_{i,j}` is drawn around the target `quality`: uniformly in
///   `[2·SQ − 1, 1]` when `SQ > 0.5`, uniformly in `(0, 2·SQ]` otherwise.
/// * The subscription count is `S_{i,j} = round(P_{i,j} / SQ_{i,j})`.
///
/// `quality == 1` is the ideal case where subscriptions predict requests
/// exactly (`S_{i,j} = P_{i,j}`).
///
/// The quality draws of one page's (page, server) pairs come from that
/// page's own RNG substream ([`crate::seeds`]), in ascending server order,
/// so [`generate_subscriptions_threads`] is **bit-identical** at any
/// thread count. The pre-substream single-stream scheme survives as
/// [`generate_subscriptions_legacy`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] unless `0 < quality <= 1`.
///
/// # Examples
///
/// ```
/// use pscd_types::{PageId, RequestEvent, RequestTrace, ServerId, SimTime};
/// use pscd_workload::generate_subscriptions;
/// let trace = RequestTrace::from_unsorted(vec![
///     RequestEvent::new(SimTime::from_secs(1), ServerId::new(0), PageId::new(0)),
///     RequestEvent::new(SimTime::from_secs(2), ServerId::new(0), PageId::new(0)),
/// ]);
/// let subs = generate_subscriptions(&trace, 1, 1.0, 7)?;
/// assert_eq!(subs.count(PageId::new(0), ServerId::new(0)), 2);
/// # Ok::<(), pscd_workload::WorkloadError>(())
/// ```
pub fn generate_subscriptions(
    trace: &RequestTrace,
    page_count: usize,
    quality: f64,
    seed: u64,
) -> Result<SubscriptionTable, WorkloadError> {
    generate_subscriptions_partial_threads(trace, page_count, quality, 1.0, seed, 1)
}

/// [`generate_subscriptions`] on up to `threads` pool workers (`0` = auto,
/// `1` = inline). Output is bit-identical at every thread count.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] unless `0 < quality <= 1`.
pub fn generate_subscriptions_threads(
    trace: &RequestTrace,
    page_count: usize,
    quality: f64,
    seed: u64,
    threads: usize,
) -> Result<SubscriptionTable, WorkloadError> {
    generate_subscriptions_partial_threads(trace, page_count, quality, 1.0, seed, threads)
}

/// Like [`generate_subscriptions`], but only a `coverage` fraction of the
/// (page, server) request pairs carries subscriptions at all.
///
/// This models the scenario the paper leaves to future work — "more
/// general scenarios in which not all requests to pages are driven
/// through notification services": pairs outside the covered set have
/// requests (walk-in readers) but zero matching subscriptions, so the
/// push-time modules are blind to them.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] unless `0 < quality <= 1` and
/// `0 <= coverage <= 1`.
pub fn generate_subscriptions_partial(
    trace: &RequestTrace,
    page_count: usize,
    quality: f64,
    coverage: f64,
    seed: u64,
) -> Result<SubscriptionTable, WorkloadError> {
    generate_subscriptions_partial_threads(trace, page_count, quality, coverage, seed, 1)
}

/// [`generate_subscriptions_partial`] on up to `threads` pool workers
/// (`0` = auto, `1` = inline). Output is bit-identical at every thread
/// count.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] unless `0 < quality <= 1` and
/// `0 <= coverage <= 1`.
pub fn generate_subscriptions_partial_threads(
    trace: &RequestTrace,
    page_count: usize,
    quality: f64,
    coverage: f64,
    seed: u64,
    threads: usize,
) -> Result<SubscriptionTable, WorkloadError> {
    generate_subscriptions_from_counts(
        &request_groups(trace),
        page_count,
        quality,
        coverage,
        seed,
        threads,
    )
}

/// Groups a request trace into the `P_{i,j}` counts the quality model
/// consumes: one entry per requested page in ascending page order, each
/// holding that page's `(server, request count)` pairs in ascending
/// server order.
pub fn request_groups(trace: &RequestTrace) -> Vec<(u32, Vec<(u16, u64)>)> {
    let mut requests: HashMap<(u32, u16), u64> = HashMap::new();
    for ev in trace {
        *requests
            .entry((ev.page.index(), ev.server.index()))
            .or_default() += 1;
    }
    let mut pairs: Vec<((u32, u16), u64)> = requests.into_iter().collect();
    pairs.sort_unstable();
    let mut groups: Vec<(u32, Vec<(u16, u64)>)> = Vec::new();
    for ((page, server), p_ij) in pairs {
        match groups.last_mut() {
            Some((p, servers)) if *p == page => servers.push((server, p_ij)),
            _ => groups.push((page, vec![(server, p_ij)])),
        }
    }
    groups
}

/// [`generate_subscriptions_partial_threads`] from precomputed
/// `P_{i,j}` counts (the [`request_groups`] shape) instead of a
/// materialized trace — what lets a streaming workload build its
/// subscription table from a single per-page counting pass without ever
/// holding the request events. Each page's quality draws come from that
/// page's own substream, so the table is bit-identical to the trace-based
/// entry points given the same counts.
///
/// `groups` must be in ascending page order with each group's servers in
/// ascending server order, pages within `0..page_count` (debug-asserted).
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] unless `0 < quality <= 1` and
/// `0 <= coverage <= 1`.
pub fn generate_subscriptions_from_counts(
    groups: &[(u32, Vec<(u16, u64)>)],
    page_count: usize,
    quality: f64,
    coverage: f64,
    seed: u64,
    threads: usize,
) -> Result<SubscriptionTable, WorkloadError> {
    if !(quality > 0.0 && quality <= 1.0) {
        return Err(WorkloadError::invalid("quality", "0 < quality <= 1"));
    }
    if !(0.0..=1.0).contains(&coverage) {
        return Err(WorkloadError::invalid("coverage", "0 <= coverage <= 1"));
    }
    debug_assert!(groups.windows(2).all(|w| w[0].0 < w[1].0));

    // One substream per page: coverage gate + quality draw over that
    // page's servers in ascending order.
    let rows: Vec<(u32, u16, u32)> =
        parallel_chunked(groups.len(), GROUP_CHUNK, threads, |range| {
            let mut out = Vec::new();
            for gi in range {
                let (page, servers) = &groups[gi];
                let mut rng = seeds::stream_rng(seed, seeds::SUBS, u64::from(*page));
                for &(server, p_ij) in servers {
                    if coverage < 1.0 && rng.random::<f64>() >= coverage {
                        continue;
                    }
                    let sq = sample_pair_quality(&mut rng, quality);
                    let count = ((p_ij as f64 / sq).round() as u64)
                        .max(1)
                        .min(u32::MAX as u64) as u32;
                    out.push((*page, server, count));
                }
            }
            out
        });

    let mut builder = SubscriptionTableBuilder::new(page_count);
    for (page, server, count) in rows {
        builder.add(page.into(), server.into(), count);
    }
    Ok(builder.build())
}

/// The pre-substream generator: one `StdRng` threaded through every pair.
///
/// Kept as a compatibility constructor for tables generated before the
/// parallel cold path landed. New code should use
/// [`generate_subscriptions`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] unless `0 < quality <= 1` and
/// `0 <= coverage <= 1`.
pub fn generate_subscriptions_legacy(
    trace: &RequestTrace,
    page_count: usize,
    quality: f64,
    coverage: f64,
    seed: u64,
) -> Result<SubscriptionTable, WorkloadError> {
    if !(quality > 0.0 && quality <= 1.0) {
        return Err(WorkloadError::invalid("quality", "0 < quality <= 1"));
    }
    if !(0.0..=1.0).contains(&coverage) {
        return Err(WorkloadError::invalid("coverage", "0 <= coverage <= 1"));
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xda94_2042_e4dd_58b5);

    // P_{i,j}: requests per (page, server).
    let mut requests: HashMap<(u32, u16), u64> = HashMap::new();
    for ev in trace {
        *requests
            .entry((ev.page.index(), ev.server.index()))
            .or_default() += 1;
    }
    // Deterministic iteration order.
    let mut pairs: Vec<((u32, u16), u64)> = requests.into_iter().collect();
    pairs.sort_unstable();

    let mut builder = SubscriptionTableBuilder::new(page_count);
    for ((page, server), p_ij) in pairs {
        if coverage < 1.0 && rng.random::<f64>() >= coverage {
            continue;
        }
        let sq = sample_pair_quality(&mut rng, quality);
        let count = ((p_ij as f64 / sq).round() as u64)
            .max(1)
            .min(u32::MAX as u64) as u32;
        builder.add(page.into(), server.into(), count);
    }
    Ok(builder.build())
}

/// Draws `SQ_{i,j}` around the target quality per eq. 7.
fn sample_pair_quality(rng: &mut StdRng, quality: f64) -> f64 {
    let sq = if quality > 0.5 {
        let lo = 2.0 * quality - 1.0;
        lo + rng.random::<f64>() * (1.0 - lo)
    } else {
        // Uniform in (0, 2*quality]: 1 - random() is in (0, 1].
        (1.0 - rng.random::<f64>()) * 2.0 * quality
    };
    sq.clamp(MIN_PAIR_QUALITY, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_types::{PageId, RequestEvent, ServerId, SimTime};

    fn trace() -> RequestTrace {
        let mut events = Vec::new();
        for (t, s, p, n) in [(1u64, 0u16, 0u32, 5usize), (2, 1, 0, 3), (3, 0, 2, 1)] {
            for k in 0..n {
                events.push(RequestEvent::new(
                    SimTime::from_secs(t * 100 + k as u64),
                    ServerId::new(s),
                    PageId::new(p),
                ));
            }
        }
        RequestTrace::from_unsorted(events)
    }

    #[test]
    fn perfect_quality_equals_request_counts() {
        let subs = generate_subscriptions(&trace(), 3, 1.0, 1).unwrap();
        assert_eq!(subs.count(PageId::new(0), ServerId::new(0)), 5);
        assert_eq!(subs.count(PageId::new(0), ServerId::new(1)), 3);
        assert_eq!(subs.count(PageId::new(2), ServerId::new(0)), 1);
        assert_eq!(subs.count(PageId::new(1), ServerId::new(0)), 0);
        assert_eq!(subs.count(PageId::new(0), ServerId::new(5)), 0);
    }

    #[test]
    fn lower_quality_inflates_counts() {
        let subs = generate_subscriptions(&trace(), 3, 0.5, 2).unwrap();
        assert!(subs.count(PageId::new(0), ServerId::new(0)) >= 5);
        assert!(subs.count(PageId::new(0), ServerId::new(1)) >= 3);
        // Statistically: across many pairs, counts well above requests.
        let total: u64 = subs.iter().map(|(_, _, c)| c as u64).sum();
        assert!(total > 9, "total = {total}");
    }

    #[test]
    fn quality_mid_band_bounds() {
        // quality = 0.75 -> SQ_{i,j} in [0.5, 1] -> S in [P, 2P].
        let mut events = Vec::new();
        for k in 0..100u64 {
            events.push(RequestEvent::new(
                SimTime::from_secs(k),
                ServerId::new(0),
                PageId::new(0),
            ));
        }
        let t = RequestTrace::from_unsorted(events);
        let subs = generate_subscriptions(&t, 1, 0.75, 3).unwrap();
        let s = subs.count(PageId::new(0), ServerId::new(0));
        assert!((100..=200).contains(&s), "s = {s}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_subscriptions(&trace(), 3, 0.25, 9).unwrap();
        let b = generate_subscriptions(&trace(), 3, 0.25, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_generation_is_bit_identical() {
        for (quality, coverage) in [(1.0, 1.0), (0.5, 1.0), (0.25, 0.6)] {
            let seq = generate_subscriptions_partial_threads(&trace(), 3, quality, coverage, 9, 1)
                .unwrap();
            for threads in [2, 4, 0] {
                let par = generate_subscriptions_partial_threads(
                    &trace(),
                    3,
                    quality,
                    coverage,
                    9,
                    threads,
                )
                .unwrap();
                assert_eq!(seq, par, "threads = {threads}, quality = {quality}");
            }
        }
    }

    #[test]
    fn from_counts_matches_trace_based_generation() {
        let t = trace();
        let groups = request_groups(&t);
        assert_eq!(groups, vec![(0, vec![(0, 5), (1, 3)]), (2, vec![(0, 1)])]);
        for (quality, coverage) in [(1.0, 1.0), (0.5, 1.0), (0.25, 0.6)] {
            let via_trace =
                generate_subscriptions_partial_threads(&t, 3, quality, coverage, 9, 1).unwrap();
            let via_counts =
                generate_subscriptions_from_counts(&groups, 3, quality, coverage, 9, 2).unwrap();
            assert_eq!(via_trace, via_counts, "quality = {quality}");
        }
        assert!(generate_subscriptions_from_counts(&groups, 3, 0.0, 1.0, 0, 1).is_err());
    }

    #[test]
    fn legacy_generator_keeps_perfect_quality_exact() {
        let old = generate_subscriptions_legacy(&trace(), 3, 1.0, 1.0, 1).unwrap();
        assert_eq!(old.count(PageId::new(0), ServerId::new(0)), 5);
        assert_eq!(old.count(PageId::new(0), ServerId::new(1)), 3);
        assert_eq!(
            old,
            generate_subscriptions_legacy(&trace(), 3, 1.0, 1.0, 1).unwrap()
        );
        assert!(generate_subscriptions_legacy(&trace(), 3, 0.0, 1.0, 0).is_err());
        assert!(generate_subscriptions_legacy(&trace(), 3, 1.0, -0.1, 0).is_err());
    }

    #[test]
    fn invalid_quality_rejected() {
        assert!(generate_subscriptions(&trace(), 3, 0.0, 0).is_err());
        assert!(generate_subscriptions(&trace(), 3, -0.1, 0).is_err());
        assert!(generate_subscriptions(&trace(), 3, 1.1, 0).is_err());
    }

    #[test]
    fn partial_coverage_drops_pairs() {
        let full = generate_subscriptions_partial(&trace(), 3, 1.0, 1.0, 4).unwrap();
        let none = generate_subscriptions_partial(&trace(), 3, 1.0, 0.0, 4).unwrap();
        let half = generate_subscriptions_partial(&trace(), 3, 1.0, 0.5, 4).unwrap();
        assert_eq!(full.iter().count(), 3);
        assert_eq!(none.iter().count(), 0);
        let h = half.iter().count();
        assert!(h <= 3);
        // Covered pairs keep their exact counts at SQ = 1.
        for (page, server, count) in half.iter() {
            assert_eq!(count, full.count(page, server));
        }
        // Invalid coverage rejected.
        assert!(generate_subscriptions_partial(&trace(), 3, 1.0, 1.5, 0).is_err());
        assert!(generate_subscriptions_partial(&trace(), 3, 1.0, -0.1, 0).is_err());
    }

    #[test]
    fn empty_trace_gives_empty_table() {
        let t = RequestTrace::default();
        let subs = generate_subscriptions(&t, 4, 1.0, 0).unwrap();
        assert_eq!(subs.iter().count(), 0);
        assert_eq!(subs.page_count(), 4);
    }
}
