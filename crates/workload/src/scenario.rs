//! Config-driven scenario library: named workload shapes beyond the
//! paper's stationary NEWS/ALTERNATIVE traces.
//!
//! The paper evaluates one stationary workload; modern content systems
//! see bursty, shifting request processes ("Paging with Multiple Caches")
//! and placement behavior differentiates under catalog churn ("Flexible
//! Content Placement using Reinforced Counters"). A [`ScenarioConfig`]
//! captures such a shape as *data* — scale, popularity skew, churn
//! intensity, flash crowds, diurnal cycles — so new workloads are config
//! files selectable from the `repro` CLI rather than hard-coded drivers.
//!
//! Non-stationarity is expressed as a [`TimeWarp`]: a monotone
//! piecewise-linear remap of request instants built from an hourly
//! intensity profile. The warp is applied **per event, before the final
//! stable time-sort**, in both the monolithic generator
//! ([`ScenarioConfig::build`]) and the streaming replay source — the
//! single point that keeps the two paths bit-identical under warping.
//!
//! Scenario files use a line-oriented `key = value` text codec written
//! here by hand: the vendored `serde` is a no-op marker shim (derives
//! expand to nothing), so the derive attributes document intent while
//! [`ScenarioConfig::to_text`]/[`ScenarioConfig::from_text`] do the work,
//! rejecting unknown fields like a `deny_unknown_fields` container.

use std::fmt;

use pscd_pool::parallel_chunked;
use serde::{Deserialize, Serialize};

use pscd_types::{RequestTrace, SimTime};

use crate::{
    generate_publishing_threads, PublishingConfig, RequestConfig, RequestStream, Workload,
    WorkloadConfig, WorkloadError,
};

/// Pages per pool job when a scenario regenerates its request trace.
const PAGE_CHUNK: usize = 256;

/// A transient request surge: the hourly intensity gains `boost` over
/// `[start_hour, start_hour + duration_hours)`, pulling request instants
/// into the surge window through the [`TimeWarp`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Surge start, in hours since the trace began.
    pub start_hour: f64,
    /// Surge length in hours.
    pub duration_hours: f64,
    /// Added intensity relative to the baseline of 1 (a boost of 12 makes
    /// a surge hour ~13× as request-dense as a quiet one).
    pub boost: f64,
}

/// A 24-hour request-intensity cycle:
/// `1 + amplitude · cos(2π · (hour − peak_hour) / 24)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCycle {
    /// Hour-of-day (0–24) of peak intensity.
    pub peak_hour: f64,
    /// Peak-to-mean intensity ratio minus one, in `[0, 1)` (0 = flat).
    pub amplitude: f64,
}

/// A named, serializable workload shape. [`workload_config`] derives the
/// generator knobs, [`time_warp`] the request-intensity remap, and
/// [`build`] the full [`Workload`]; [`shipped`] lists the library.
///
/// [`workload_config`]: ScenarioConfig::workload_config
/// [`time_warp`]: ScenarioConfig::time_warp
/// [`build`]: ScenarioConfig::build
/// [`shipped`]: ScenarioConfig::shipped
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Scenario name (also the `repro` selector).
    pub name: String,
    /// Master seed for all derived randomness.
    pub seed: u64,
    /// Volume scale relative to the paper's full MSNBC trace (1.0 =
    /// 30,147 pages / ~195,000 requests per 7 days).
    pub scale: f64,
    /// Zipf–Mandelbrot popularity exponent (1.5 NEWS, 1.0 ALTERNATIVE).
    pub zipf_alpha: f64,
    /// Trace horizon in days.
    pub horizon_days: u32,
    /// Fraction of distinct pages that receive modified versions (the
    /// paper's catalog: 2,400 / 6,000 = 0.4). Higher = faster
    /// publish/perish churn.
    pub churn_updated_fraction: f64,
    /// Mean modified versions per updated page over the horizon (the
    /// paper: ~24,147 / 2,400 ≈ 10). Higher = shorter page lifetimes.
    pub churn_versions_per_update: f64,
    /// Transient request surges, applied through the [`TimeWarp`].
    pub flash_crowds: Vec<FlashCrowd>,
    /// Optional 24-hour intensity cycle.
    pub diurnal: Option<DiurnalCycle>,
}

impl ScenarioConfig {
    /// The MSNBC-like news baseline: the paper's shape at 5% volume with
    /// no non-stationarity — the reference the other scenarios perturb.
    pub fn news_baseline() -> Self {
        Self {
            name: "news-baseline".to_owned(),
            seed: 0,
            scale: 0.05,
            zipf_alpha: 1.5,
            horizon_days: 7,
            churn_updated_fraction: 0.4,
            churn_versions_per_update: 10.0,
            flash_crowds: Vec::new(),
            diurnal: None,
        }
    }

    /// Catalog churn with publish/perish dynamics: most pages get
    /// updated, and updated pages turn over twice as fast — push-time
    /// placement must keep re-earning its cache slots.
    pub fn catalog_churn() -> Self {
        Self {
            name: "catalog-churn".to_owned(),
            churn_updated_fraction: 0.9,
            churn_versions_per_update: 20.0,
            ..Self::news_baseline()
        }
    }

    /// Flash crowds: two request surges (a 6-hour 12× event on day 2 and
    /// a sharper 3-hour 25× event on day 5) on the news baseline.
    pub fn flash_crowds() -> Self {
        Self {
            name: "flash-crowds".to_owned(),
            flash_crowds: vec![
                FlashCrowd {
                    start_hour: 48.0,
                    duration_hours: 6.0,
                    boost: 12.0,
                },
                FlashCrowd {
                    start_hour: 120.0,
                    duration_hours: 3.0,
                    boost: 25.0,
                },
            ],
            ..Self::news_baseline()
        }
    }

    /// Diurnal cycles: a strong evening-peaked 24-hour request rhythm on
    /// the news baseline.
    pub fn diurnal() -> Self {
        Self {
            name: "diurnal".to_owned(),
            diurnal: Some(DiurnalCycle {
                peak_hour: 20.0,
                amplitude: 0.7,
            }),
            ..Self::news_baseline()
        }
    }

    /// The shipped scenario library, in presentation order.
    pub fn shipped() -> Vec<Self> {
        vec![
            Self::news_baseline(),
            Self::catalog_churn(),
            Self::flash_crowds(),
            Self::diurnal(),
        ]
    }

    /// Looks a shipped scenario up by name.
    pub fn shipped_by_name(name: &str) -> Option<Self> {
        Self::shipped().into_iter().find(|s| s.name == name)
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if self.name.is_empty() {
            return Err(WorkloadError::invalid("name", "non-empty"));
        }
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(WorkloadError::invalid("scale", "> 0"));
        }
        if self.horizon_days == 0 {
            return Err(WorkloadError::invalid("horizon_days", ">= 1"));
        }
        if !(0.0..=1.0).contains(&self.churn_updated_fraction) {
            return Err(WorkloadError::invalid(
                "churn_updated_fraction",
                "in [0, 1]",
            ));
        }
        if !self.churn_versions_per_update.is_finite() || self.churn_versions_per_update < 0.0 {
            return Err(WorkloadError::invalid(
                "churn_versions_per_update",
                "finite and >= 0",
            ));
        }
        for crowd in &self.flash_crowds {
            if !crowd.start_hour.is_finite() || crowd.start_hour < 0.0 {
                return Err(WorkloadError::invalid("flash_crowd.start_hour", ">= 0"));
            }
            if !crowd.duration_hours.is_finite() || crowd.duration_hours <= 0.0 {
                return Err(WorkloadError::invalid("flash_crowd.duration_hours", "> 0"));
            }
            if !crowd.boost.is_finite() || crowd.boost < 0.0 {
                return Err(WorkloadError::invalid("flash_crowd.boost", ">= 0"));
            }
        }
        if let Some(cycle) = &self.diurnal {
            if !cycle.peak_hour.is_finite() || !(0.0..=24.0).contains(&cycle.peak_hour) {
                return Err(WorkloadError::invalid("diurnal.peak_hour", "in [0, 24]"));
            }
            if !cycle.amplitude.is_finite() || !(0.0..1.0).contains(&cycle.amplitude) {
                return Err(WorkloadError::invalid("diurnal.amplitude", "in [0, 1)"));
            }
        }
        Ok(())
    }

    /// Derives the generator knobs: the paper's configuration scaled by
    /// `scale` with the churn fractions and horizon applied.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for out-of-range fields.
    pub fn workload_config(&self) -> Result<WorkloadConfig, WorkloadError> {
        self.validate()?;
        let horizon = SimTime::from_days(u64::from(self.horizon_days));
        let day_factor = f64::from(self.horizon_days) / 7.0;
        let paper = PublishingConfig::paper();
        let distinct =
            ((paper.distinct_pages as f64 * self.scale * day_factor).round() as usize).max(1);
        let updated = ((distinct as f64 * self.churn_updated_fraction).round() as usize)
            .min(distinct)
            .max(usize::from(self.churn_versions_per_update > 0.0));
        let versions = (updated as f64 * self.churn_versions_per_update).round() as usize;
        let publishing = PublishingConfig {
            distinct_pages: distinct,
            updated_pages: if versions > 0 { updated } else { 0 },
            total_pages: distinct + versions,
            horizon,
            ..paper
        };
        let news = RequestConfig::news();
        let requests = RequestConfig {
            total_requests: ((news.total_requests as f64 * self.scale * day_factor).round() as u64)
                .max(1),
            zipf_alpha: self.zipf_alpha,
            horizon,
            ..news
        };
        Ok(WorkloadConfig {
            publishing,
            requests,
            seed: self.seed,
        })
    }

    /// The request-intensity remap, or `None` for a stationary scenario
    /// (no flash crowds, no diurnal cycle).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for out-of-range fields.
    pub fn time_warp(&self) -> Result<Option<TimeWarp>, WorkloadError> {
        self.validate()?;
        if self.flash_crowds.is_empty() && self.diurnal.is_none() {
            return Ok(None);
        }
        let horizon = SimTime::from_days(u64::from(self.horizon_days));
        let hours = (horizon.as_hours_f64().ceil() as usize).max(1);
        let mut intensity = vec![1.0f64; hours];
        if let Some(cycle) = &self.diurnal {
            for (h, weight) in intensity.iter_mut().enumerate() {
                let phase = (h as f64 + 0.5 - cycle.peak_hour) / 24.0;
                *weight += cycle.amplitude * (std::f64::consts::TAU * phase).cos();
            }
        }
        for crowd in &self.flash_crowds {
            let end = crowd.start_hour + crowd.duration_hours;
            for (h, weight) in intensity.iter_mut().enumerate() {
                // Boost each hour bin by its overlap with the surge.
                let overlap =
                    (end.min(h as f64 + 1.0) - crowd.start_hour.max(h as f64)).clamp(0.0, 1.0);
                *weight += crowd.boost * overlap;
            }
        }
        Ok(Some(TimeWarp::from_intensity(horizon, &intensity)))
    }

    /// Generates the scenario's workload on up to `threads` pool workers
    /// (`0` = auto, `1` = inline); deterministic in `seed` at every
    /// thread count. Structure: publishing stream as configured, request
    /// events regenerated per page through [`RequestStream`] with the
    /// [`TimeWarp`] applied per event *before* the final stable
    /// time-sort — exactly the order the streaming replay source uses, so
    /// the two stay bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for out-of-range fields.
    pub fn build_threads(&self, threads: usize) -> Result<Workload, WorkloadError> {
        let config = self.workload_config()?;
        let warp = self.time_warp()?;
        let publishing = generate_publishing_threads(&config.publishing, config.seed, threads)?;
        let stream = RequestStream::prepare(
            publishing.pages.len(),
            &config.requests,
            config.seed,
            threads,
        )?;
        let pages = publishing.pages;
        let events = parallel_chunked(pages.len(), PAGE_CHUNK, threads, |range| {
            let mut out = Vec::new();
            for page_idx in range {
                let before = out.len();
                stream.append_page_requests(&pages, page_idx, &mut out);
                if let Some(warp) = &warp {
                    for ev in &mut out[before..] {
                        ev.time = warp.apply(ev.time);
                    }
                }
            }
            out
        });
        Workload::from_parts(
            config,
            pages,
            publishing.stream,
            RequestTrace::from_unsorted(events),
        )
    }

    /// [`build_threads`](ScenarioConfig::build_threads) inline.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for out-of-range fields.
    pub fn build(&self) -> Result<Workload, WorkloadError> {
        self.build_threads(1)
    }

    /// A seed-stable FNV-1a digest of the generated workload (every
    /// publish and request event) — what the scenario golden tests pin.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for out-of-range fields.
    pub fn digest(&self) -> Result<u64, WorkloadError> {
        let w = self.build_threads(0)?;
        let mut hash = Fnv1a::new();
        for page in w.pages() {
            hash.write_u64(u64::from(page.id().index()));
            hash.write_u64(page.size().as_u64());
        }
        for ev in w.publishing().iter() {
            hash.write_u64(ev.time.as_millis());
            hash.write_u64(u64::from(ev.page.index()));
        }
        for ev in w.requests().iter() {
            hash.write_u64(ev.time.as_millis());
            hash.write_u64(u64::from(ev.server.index()));
            hash.write_u64(u64::from(ev.page.index()));
        }
        Ok(hash.finish())
    }

    /// Serializes to the line-oriented `key = value` scenario format
    /// (the hand-written codec standing in for the no-op vendored serde).
    /// Round-trips exactly through [`from_text`](ScenarioConfig::from_text).
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "name = {}", self.name);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "scale = {:?}", self.scale);
        let _ = writeln!(out, "zipf_alpha = {:?}", self.zipf_alpha);
        let _ = writeln!(out, "horizon_days = {}", self.horizon_days);
        let _ = writeln!(
            out,
            "churn_updated_fraction = {:?}",
            self.churn_updated_fraction
        );
        let _ = writeln!(
            out,
            "churn_versions_per_update = {:?}",
            self.churn_versions_per_update
        );
        for crowd in &self.flash_crowds {
            let _ = writeln!(
                out,
                "flash_crowd = start_hour={:?} duration_hours={:?} boost={:?}",
                crowd.start_hour, crowd.duration_hours, crowd.boost
            );
        }
        if let Some(cycle) = &self.diurnal {
            let _ = writeln!(
                out,
                "diurnal = peak_hour={:?} amplitude={:?}",
                cycle.peak_hour, cycle.amplitude
            );
        }
        out
    }

    /// Parses the `key = value` scenario format: `#` comments and blank
    /// lines are skipped, `flash_crowd` may repeat, every other key may
    /// appear at most once, and **unknown keys are rejected** (the codec
    /// behaves like a `deny_unknown_fields` container).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Self, ScenarioError> {
        let mut name: Option<String> = None;
        let mut seed: Option<u64> = None;
        let mut scale: Option<f64> = None;
        let mut zipf_alpha: Option<f64> = None;
        let mut horizon_days: Option<u32> = None;
        let mut churn_updated_fraction: Option<f64> = None;
        let mut churn_versions_per_update: Option<f64> = None;
        let mut flash_crowds: Vec<FlashCrowd> = Vec::new();
        let mut diurnal: Option<DiurnalCycle> = None;

        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (key, value) = trimmed
                .split_once('=')
                .ok_or_else(|| ScenarioError::parse(line, "expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => set_once(line, key, &mut name, value.to_owned())?,
                "seed" => set_once(line, key, &mut seed, parse_num(line, key, value)?)?,
                "scale" => set_once(line, key, &mut scale, parse_num(line, key, value)?)?,
                "zipf_alpha" => set_once(line, key, &mut zipf_alpha, parse_num(line, key, value)?)?,
                "horizon_days" => {
                    set_once(line, key, &mut horizon_days, parse_num(line, key, value)?)?
                }
                "churn_updated_fraction" => set_once(
                    line,
                    key,
                    &mut churn_updated_fraction,
                    parse_num(line, key, value)?,
                )?,
                "churn_versions_per_update" => set_once(
                    line,
                    key,
                    &mut churn_versions_per_update,
                    parse_num(line, key, value)?,
                )?,
                "flash_crowd" => {
                    let fields =
                        parse_fields(line, value, &["start_hour", "duration_hours", "boost"])?;
                    flash_crowds.push(FlashCrowd {
                        start_hour: fields[0],
                        duration_hours: fields[1],
                        boost: fields[2],
                    });
                }
                "diurnal" => {
                    let fields = parse_fields(line, value, &["peak_hour", "amplitude"])?;
                    set_once(
                        line,
                        key,
                        &mut diurnal,
                        DiurnalCycle {
                            peak_hour: fields[0],
                            amplitude: fields[1],
                        },
                    )?;
                }
                other => {
                    return Err(ScenarioError::parse(
                        line,
                        format!("unknown field `{other}`"),
                    ))
                }
            }
        }

        let require = |field: &str| ScenarioError::parse(0, format!("missing field `{field}`"));
        Ok(Self {
            name: name.ok_or_else(|| require("name"))?,
            seed: seed.ok_or_else(|| require("seed"))?,
            scale: scale.ok_or_else(|| require("scale"))?,
            zipf_alpha: zipf_alpha.ok_or_else(|| require("zipf_alpha"))?,
            horizon_days: horizon_days.ok_or_else(|| require("horizon_days"))?,
            churn_updated_fraction: churn_updated_fraction
                .ok_or_else(|| require("churn_updated_fraction"))?,
            churn_versions_per_update: churn_versions_per_update
                .ok_or_else(|| require("churn_versions_per_update"))?,
            flash_crowds,
            diurnal,
        })
    }
}

fn set_once<T>(
    line: usize,
    key: &str,
    slot: &mut Option<T>,
    value: T,
) -> Result<(), ScenarioError> {
    if slot.is_some() {
        return Err(ScenarioError::parse(
            line,
            format!("duplicate field `{key}`"),
        ));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_num<T: std::str::FromStr>(
    line: usize,
    key: &str,
    value: &str,
) -> Result<T, ScenarioError> {
    value
        .parse()
        .map_err(|_| ScenarioError::parse(line, format!("invalid value for `{key}`: {value}")))
}

/// Parses an inline record `a=1 b=2 ...` whose fields must appear exactly
/// in the given order (how `to_text` writes them), rejecting unknown or
/// missing fields.
fn parse_fields(line: usize, value: &str, names: &[&str]) -> Result<Vec<f64>, ScenarioError> {
    let parts: Vec<&str> = value.split_whitespace().collect();
    if parts.len() != names.len() {
        return Err(ScenarioError::parse(
            line,
            format!("expected fields {names:?}"),
        ));
    }
    let mut out = Vec::with_capacity(names.len());
    for (part, name) in parts.iter().zip(names) {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| ScenarioError::parse(line, "expected `field=value`"))?;
        if key != *name {
            return Err(ScenarioError::parse(
                line,
                format!("unknown field `{key}` (expected `{name}`)"),
            ));
        }
        out.push(parse_num(line, key, val)?);
    }
    Ok(out)
}

/// A scenario-file parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A malformed or unknown line (`line` is 1-based; 0 marks a
    /// document-level problem such as a missing field).
    Parse {
        /// 1-based offending line (0 = whole document).
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl ScenarioError {
    fn parse(line: usize, reason: impl Into<String>) -> Self {
        Self::Parse {
            line,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { line: 0, reason } => write!(f, "scenario parse error: {reason}"),
            Self::Parse { line, reason } => {
                write!(f, "scenario parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// 64-bit FNV-1a, hand-rolled so workload digests need no external
/// hashing crate and stay stable across Rust releases (unlike
/// `DefaultHasher`, whose algorithm is unspecified).
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A monotone piecewise-linear remap of request instants, built from an
/// hourly intensity profile: uniform input time is mapped through the
/// inverse normalized cumulative intensity, so output request density is
/// proportional to the profile. Pure, deterministic and order-preserving
/// per event — which is what lets the monolithic and streaming generators
/// apply it independently and still agree bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWarp {
    /// Normalized cumulative intensity at hour boundaries:
    /// `cumulative[0] = 0`, `cumulative[hours] = 1`, non-decreasing.
    cumulative: Vec<f64>,
    horizon_ms: u64,
}

impl TimeWarp {
    /// Builds the warp from per-hour intensity samples (all `>= 0`, at
    /// least one `> 0`); the profile is normalized internally.
    pub fn from_intensity(horizon: SimTime, hourly: &[f64]) -> Self {
        debug_assert!(!hourly.is_empty());
        debug_assert!(hourly.iter().all(|w| w.is_finite() && *w >= 0.0));
        let total: f64 = hourly.iter().sum();
        let total = if total > 0.0 { total } else { 1.0 };
        let mut cumulative = Vec::with_capacity(hourly.len() + 1);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for w in hourly {
            acc += w / total;
            cumulative.push(acc.min(1.0));
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Self {
            cumulative,
            horizon_ms: horizon.as_millis().max(1),
        }
    }

    /// Remaps one instant; output is clamped inside the horizon.
    pub fn apply(&self, t: SimTime) -> SimTime {
        let x = (t.as_millis() as f64 / self.horizon_ms as f64).clamp(0.0, 1.0);
        // The segment whose cumulative range contains x; ties resolve to
        // the first segment ending at or above x, so zero-intensity
        // (zero-width) segments are skipped deterministically.
        let seg = self.cumulative[1..].partition_point(|&c| c < x);
        let seg = seg.min(self.cumulative.len() - 2);
        let (lo, hi) = (self.cumulative[seg], self.cumulative[seg + 1]);
        let frac = if hi > lo { (x - lo) / (hi - lo) } else { 0.0 };
        let hours = self.cumulative.len() - 1;
        let out_ms = (seg as f64 + frac) / hours as f64 * self.horizon_ms as f64;
        SimTime::from_millis((out_ms as u64).min(self.horizon_ms.saturating_sub(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_scenarios_are_distinct_and_valid() {
        let shipped = ScenarioConfig::shipped();
        assert_eq!(shipped.len(), 4);
        let names: std::collections::HashSet<_> = shipped.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), shipped.len());
        for s in &shipped {
            s.workload_config().unwrap();
            s.time_warp().unwrap();
            assert_eq!(ScenarioConfig::shipped_by_name(&s.name), Some(s.clone()));
        }
        assert_eq!(ScenarioConfig::shipped_by_name("nope"), None);
    }

    #[test]
    fn text_codec_round_trips_every_shipped_scenario() {
        for s in ScenarioConfig::shipped() {
            let text = s.to_text();
            let back = ScenarioConfig::from_text(&text).unwrap();
            assert_eq!(back, s, "{}", s.name);
            assert_eq!(back.to_text(), text);
        }
    }

    #[test]
    fn unknown_and_duplicate_fields_rejected() {
        let base = ScenarioConfig::news_baseline().to_text();
        let unknown = format!("{base}mystery_knob = 3\n");
        assert!(matches!(
            ScenarioConfig::from_text(&unknown),
            Err(ScenarioError::Parse { reason, .. }) if reason.contains("unknown field")
        ));
        let duplicate = format!("{base}seed = 7\n");
        assert!(matches!(
            ScenarioConfig::from_text(&duplicate),
            Err(ScenarioError::Parse { reason, .. }) if reason.contains("duplicate")
        ));
        let missing = "name = x\n";
        assert!(matches!(
            ScenarioConfig::from_text(missing),
            Err(ScenarioError::Parse { line: 0, .. })
        ));
        let bad_record = "flash_crowd = start_hour=1 oops=2 boost=3\n";
        assert!(ScenarioConfig::from_text(bad_record).is_err());
        assert!(ScenarioConfig::from_text("just text\n").is_err());
        // Comments and blank lines are fine.
        let commented = format!("# a scenario\n\n{base}");
        assert_eq!(
            ScenarioConfig::from_text(&commented).unwrap(),
            ScenarioConfig::news_baseline()
        );
    }

    #[test]
    fn stationary_scenario_has_no_warp_and_matches_plain_generation() {
        let s = ScenarioConfig::news_baseline();
        assert_eq!(s.time_warp().unwrap(), None);
        let w = s.build().unwrap();
        let plain = Workload::generate(&s.workload_config().unwrap()).unwrap();
        assert_eq!(w, plain, "no warp means the plain generator output");
    }

    #[test]
    fn build_is_deterministic_and_thread_independent() {
        let s = ScenarioConfig::flash_crowds();
        let a = s.build_threads(1).unwrap();
        let b = s.build_threads(4).unwrap();
        assert_eq!(a, b);
        let mut reseeded = s.clone();
        reseeded.seed = 9;
        assert_ne!(reseeded.build().unwrap(), a);
    }

    #[test]
    fn flash_crowd_concentrates_requests_in_the_surge() {
        let s = ScenarioConfig::flash_crowds();
        let warped = s.build().unwrap();
        let baseline = ScenarioConfig::news_baseline().build().unwrap();
        let share = |w: &Workload| {
            let surge = w
                .requests()
                .iter()
                .filter(|e| (48..54).contains(&e.time.hour_index()))
                .count();
            surge as f64 / w.requests().len() as f64
        };
        // 6 of 168 hours carry far more than their uniform share.
        assert!(share(&warped) > 3.0 * share(&baseline).max(6.0 / 168.0 / 3.0));
        // Requests remain inside the horizon and time-sorted.
        assert!(warped
            .requests()
            .iter()
            .all(|e| e.time < SimTime::from_days(7)));
    }

    #[test]
    fn diurnal_cycle_modulates_hourly_volume() {
        let s = ScenarioConfig::diurnal();
        let w = s.build().unwrap();
        let mut hourly = [0u64; 24];
        for ev in w.requests() {
            hourly[ev.time.hour_index() % 24] += 1;
        }
        let peak = hourly[20];
        let trough = hourly[8];
        assert!(
            peak as f64 > 1.5 * trough.max(1) as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn time_warp_is_monotone_and_density_shaping() {
        let horizon = SimTime::from_hours(4);
        let warp = TimeWarp::from_intensity(horizon, &[1.0, 0.0, 3.0, 0.0]);
        let mut last = SimTime::ZERO;
        let mut in_hot_hour = 0usize;
        let samples = 1000;
        for k in 0..samples {
            let t = SimTime::from_millis(horizon.as_millis() * k as u64 / samples as u64);
            let out = warp.apply(t);
            assert!(out >= last, "warp must be monotone");
            assert!(out < horizon);
            last = out;
            if out.hour_index() == 2 {
                in_hot_hour += 1;
            }
        }
        // Hour 2 carries 3/4 of the intensity mass.
        assert!(
            (in_hot_hour as f64 / samples as f64 - 0.75).abs() < 0.05,
            "hot-hour share {}",
            in_hot_hour as f64 / samples as f64
        );
    }

    #[test]
    fn invalid_scenarios_rejected() {
        let mut s = ScenarioConfig::news_baseline();
        s.scale = 0.0;
        assert!(s.workload_config().is_err());
        let mut s = ScenarioConfig::news_baseline();
        s.horizon_days = 0;
        assert!(s.build().is_err());
        let mut s = ScenarioConfig::news_baseline();
        s.churn_updated_fraction = 1.5;
        assert!(s.workload_config().is_err());
        let mut s = ScenarioConfig::diurnal();
        s.diurnal = Some(DiurnalCycle {
            peak_hour: 20.0,
            amplitude: 1.0,
        });
        assert!(s.time_warp().is_err());
        let mut s = ScenarioConfig::flash_crowds();
        s.flash_crowds[0].duration_hours = 0.0;
        assert!(s.time_warp().is_err());
    }
}
