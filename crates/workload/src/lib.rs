//! Synthetic publish/subscribe workloads modeled on MSNBC dynamics.
//!
//! No public publish/subscribe workloads exist (a core difficulty the paper
//! calls out), so this crate regenerates the paper's synthetic workload
//! (§4) from the published MSNBC observations of Padmanabhan & Qiu
//! (SIGCOMM 2000):
//!
//! * **Publishing stream** ([`generate_publishing`]): 30,147 pages over 7
//!   days — 6,000 distinct originals, 2,400 of which accumulate ~24,000
//!   modified versions at fixed per-page intervals drawn from a step-wise
//!   distribution; log-normal page sizes.
//! * **Request stream** ([`generate_requests`]): ~195,000 requests across
//!   100 proxies; Zipf popularity (α = 1.5 for the NEWS trace, 1.0 for
//!   ALTERNATIVE); age-decaying request times per popularity class;
//!   popularity-sized per-day server pools with 60% day-over-day overlap.
//! * **Subscriptions** ([`generate_subscriptions`]): per-(page, server)
//!   counts derived from the request trace through the subscription-quality
//!   model (eq. 7).
//!
//! [`Workload`] bundles the three, and [`ContentModel`] optionally dresses
//! pages with news-like attributes for the content-based matching engine.
//!
//! # Examples
//!
//! ```
//! use pscd_workload::{Workload, WorkloadConfig};
//!
//! // 1% scale of the paper's NEWS trace — fast enough for tests.
//! let w = Workload::generate(&WorkloadConfig::news_scaled(0.01))?;
//! let subs = w.subscriptions(1.0)?;
//! let capacities = w.cache_capacities(0.05);
//! assert_eq!(capacities.len(), w.server_count() as usize);
//! assert_eq!(subs.page_count(), w.pages().len());
//! # Ok::<(), pscd_workload::WorkloadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod content;
mod dist;
mod error;
pub mod io;
mod publishing;
mod requests;
mod scenario;
pub mod seeds;
mod subscriptions;
mod workload;

pub use content::{matcher_from_table, ContentModel, CATEGORIES, TAGS};
pub use dist::{AgeDecay, LogNormal, StepwiseInterval, Zipf};
pub use error::WorkloadError;
pub use publishing::{
    generate_publishing, generate_publishing_legacy, generate_publishing_threads, PublishingConfig,
    PublishingOutput,
};
pub use requests::{
    generate_requests, generate_requests_legacy, generate_requests_threads, popularity_class,
    popularity_class_shifted, RequestConfig, RequestStream,
};
pub use scenario::{DiurnalCycle, FlashCrowd, ScenarioConfig, ScenarioError, TimeWarp};
pub use subscriptions::{
    generate_subscriptions, generate_subscriptions_from_counts, generate_subscriptions_legacy,
    generate_subscriptions_partial, generate_subscriptions_partial_threads,
    generate_subscriptions_threads, request_groups,
};
pub use workload::{Workload, WorkloadConfig};
