//! Request-stream generation (paper §4.2).

use pscd_pool::parallel_chunked;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use pscd_types::{PageMeta, RequestEvent, RequestTrace, ServerId, SimTime};

use crate::{seeds, AgeDecay, WorkloadError, Zipf};

/// Multinomial draws per substream chunk. Unlike the per-entity chunking
/// elsewhere, each chunk here *is* the substream entity (one RNG per
/// `ZIPF_CHUNK` consecutive draws), so this constant is part of the
/// deterministic output: changing it reshuffles which popularity draws
/// share a stream. Thread count and scheduling still never matter.
const ZIPF_CHUNK: usize = 8_192;

/// Pages per pool job in the per-page placement fan-out. Purely a
/// scheduling granularity (each page has its own substream).
const PAGE_CHUNK: usize = 256;

/// Configuration of the request stream.
///
/// Defaults reproduce the paper: ~195,000 requests over 7 days spread over
/// 100 proxy servers (a 1/1000 scale-down of MSNBC's 25M requests/day),
/// Zipf popularity with `alpha = 1.5` (the NEWS trace; the ALTERNATIVE
/// trace uses 1.0), age-decaying request times with one decay exponent per
/// popularity class, per-day server pools sized by `sqrt` of relative
/// popularity, and 60% day-over-day pool overlap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestConfig {
    /// Number of proxy servers (paper: 100).
    pub servers: u16,
    /// Total requests over the horizon (paper: ~195,000).
    pub total_requests: u64,
    /// Zipf exponent of the popularity distribution (1.5 NEWS, 1.0 ALT).
    pub zipf_alpha: f64,
    /// Simulation horizon (paper: 7 days).
    pub horizon: SimTime,
    /// Age-decay exponents for the four popularity classes, most popular
    /// first ("the more popular a page is, the stronger the negative
    /// correlation between access probability and age", §4.2).
    pub class_gammas: [f64; 4],
    /// Fraction of a page's candidate-server pool kept from one day to the
    /// next (paper: 0.6).
    pub day_overlap: f64,
    /// Exponent of the popularity→server-spread law, eq. 6 (paper: 0.5).
    pub server_exponent: f64,
    /// Mandelbrot plateau of the popularity distribution:
    /// `P(rank i) ∝ 1/(shift + i)^alpha`. Zero is pure Zipf. The default is
    /// calibrated so the trace's (page, server) pair density matches the
    /// traffic volumes of the paper's figure 7 (see DESIGN.md).
    pub zipf_shift: f64,
}

impl RequestConfig {
    /// The paper's NEWS trace (α = 1.5).
    pub fn news() -> Self {
        Self {
            servers: 100,
            total_requests: 195_000,
            zipf_alpha: 1.5,
            horizon: SimTime::from_days(7),
            class_gammas: [2.0, 1.4, 0.8, 0.3],
            day_overlap: 0.6,
            server_exponent: 0.5,
            zipf_shift: 100.0,
        }
    }

    /// The paper's ALTERNATIVE trace (α = 1.0).
    pub fn alternative() -> Self {
        Self {
            zipf_alpha: 1.0,
            ..Self::news()
        }
    }

    /// Proportionally scaled-down request volume for tests/benches.
    pub fn scaled(factor: f64) -> Self {
        let p = Self::news();
        Self {
            total_requests: ((p.total_requests as f64 * factor).round() as u64).max(1),
            ..p
        }
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if self.servers == 0 {
            return Err(WorkloadError::invalid("servers", ">= 1"));
        }
        if self.total_requests == 0 {
            return Err(WorkloadError::invalid("total_requests", ">= 1"));
        }
        if !self.zipf_alpha.is_finite() || self.zipf_alpha < 0.0 {
            return Err(WorkloadError::invalid("zipf_alpha", "finite and >= 0"));
        }
        if self.horizon == SimTime::ZERO {
            return Err(WorkloadError::invalid("horizon", "> 0"));
        }
        if self.class_gammas.iter().any(|g| !g.is_finite() || *g < 0.0) {
            return Err(WorkloadError::invalid("class_gammas", "finite and >= 0"));
        }
        if !(0.0..=1.0).contains(&self.day_overlap) {
            return Err(WorkloadError::invalid("day_overlap", "in [0, 1]"));
        }
        if !self.server_exponent.is_finite() || self.server_exponent <= 0.0 {
            return Err(WorkloadError::invalid("server_exponent", "> 0"));
        }
        if !self.zipf_shift.is_finite() || self.zipf_shift < 0.0 {
            return Err(WorkloadError::invalid("zipf_shift", "finite and >= 0"));
        }
        Ok(())
    }
}

impl Default for RequestConfig {
    fn default() -> Self {
        Self::news()
    }
}

/// The popularity class of a page: request rates drop roughly one order of
/// magnitude from one class to the next (paper §4.2). With Zipf weights
/// `w(r) = r^-alpha`, the class is `floor(alpha * log10(rank))`, clamped to
/// four classes.
pub fn popularity_class(rank: usize, alpha: f64) -> usize {
    popularity_class_shifted(rank, alpha, 0.0)
}

/// [`popularity_class`] for a shifted (Zipf–Mandelbrot) distribution: the
/// class boundary is where the *weight* drops by an order of magnitude
/// relative to rank 1, `floor(alpha · log10((shift + rank)/(shift + 1)))`.
pub fn popularity_class_shifted(rank: usize, alpha: f64, shift: f64) -> usize {
    debug_assert!(rank >= 1);
    ((alpha * ((shift + rank as f64) / (shift + 1.0)).log10()).floor() as usize).min(3)
}

/// Generates a request trace for the given page table (deterministic in
/// `seed`).
///
/// The generator follows the paper's pipeline: (1) assign popularity ranks
/// to pages uniformly at random; (2) multinomially draw `total_requests`
/// page references from the Zipf distribution; (3) place each page's
/// references in time with the age-decay law of its popularity class,
/// starting at its publish time; (4) split references across per-day
/// candidate-server pools sized by eq. 6 with 60% day-over-day overlap.
///
/// Randomness comes from per-entity substreams ([`crate::seeds`]): the
/// multinomial draw is chunked into fixed-size substream blocks and each
/// page's placement (times, pools, server picks) draws from that page's
/// own child stream, so [`generate_requests_threads`] is **bit-identical**
/// at any thread count. The pre-substream single-stream scheme survives as
/// [`generate_requests_legacy`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] for invalid configs or an empty
/// page table.
pub fn generate_requests(
    pages: &[PageMeta],
    config: &RequestConfig,
    seed: u64,
) -> Result<RequestTrace, WorkloadError> {
    generate_requests_threads(pages, config, seed, 1)
}

/// [`generate_requests`] on up to `threads` pool workers (`0` = auto,
/// `1` = inline). Output is bit-identical at every thread count.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] for invalid configs or an empty
/// page table.
pub fn generate_requests_threads(
    pages: &[PageMeta],
    config: &RequestConfig,
    seed: u64,
    threads: usize,
) -> Result<RequestTrace, WorkloadError> {
    let stream = RequestStream::prepare(pages.len(), config, seed, threads)?;
    let events: Vec<RequestEvent> = parallel_chunked(pages.len(), PAGE_CHUNK, threads, |range| {
        let mut out = Vec::new();
        for page_idx in range {
            stream.append_page_requests(pages, page_idx, &mut out);
        }
        out
    });
    Ok(RequestTrace::from_unsorted(events))
}

/// The structural phase of request generation, separated from the
/// per-page placement phase so callers can regenerate any page's requests
/// independently — the streaming replay source regenerates one
/// time-window's worth of pages at a time instead of materializing the
/// whole trace.
///
/// [`prepare`](RequestStream::prepare) runs the trace-wide draws (the
/// rank permutation and the multinomial popularity counts — phases 1–2 of
/// the pipeline); [`append_page_requests`](RequestStream::append_page_requests)
/// then replays phase 3–4 for a single page from that page's own RNG
/// substream. Because every per-page draw is keyed only by `(seed,
/// page_idx)` and the prepared counts, generating pages in any grouping
/// yields exactly the events of [`generate_requests_threads`] — the
/// generator itself is now just `prepare` + a parallel loop over all
/// pages.
#[derive(Debug, Clone)]
pub struct RequestStream {
    config: RequestConfig,
    seed: u64,
    /// `rank_of[page_index]` = popularity rank in `1..=n`.
    rank_of: Vec<usize>,
    /// Multinomially drawn request count per page.
    counts: Vec<u64>,
    /// `max(counts)`, floored at 1 (the eq. 6 normalizer).
    max_count: u64,
    decays: Vec<AgeDecay>,
}

impl RequestStream {
    /// Runs the trace-wide structural draws for a `page_count`-page table:
    /// (1) the rank permutation and (2) the multinomial request counts, in
    /// fixed-size substream chunks on up to `threads` workers (`0` = auto,
    /// `1` = inline). Deterministic in `seed` at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for invalid configs or an
    /// empty page table.
    pub fn prepare(
        page_count: usize,
        config: &RequestConfig,
        seed: u64,
        threads: usize,
    ) -> Result<Self, WorkloadError> {
        config.validate()?;
        if page_count == 0 {
            return Err(WorkloadError::invalid("pages", "non-empty page table"));
        }
        let n = page_count;

        // (1) Random rank permutation: rank_of[page] in 1..=n (structural
        //     draw, one sequential substream).
        let mut ranks: Vec<usize> = (1..=n).collect();
        ranks.shuffle(&mut seeds::stream_rng(seed, seeds::REQ_RANK, 0));
        let rank_of = ranks; // rank_of[page_index] = rank

        // (2) Multinomial draw of per-page request counts, in fixed-size
        //     substream chunks. The accumulation into `counts` is
        //     sequential and chunk-ordered, so the sum is identical at any
        //     thread count.
        let zipf = Zipf::with_shift(n, config.zipf_alpha, config.zipf_shift)
            .expect("validated zipf parameters");
        let mut page_of_rank = vec![0usize; n + 1];
        for (page, &rank) in rank_of.iter().enumerate() {
            page_of_rank[rank] = page;
        }
        let total = config.total_requests as usize;
        let drawn: Vec<u32> = parallel_chunked(total, ZIPF_CHUNK, threads, |range| {
            let mut rng =
                seeds::stream_rng(seed, seeds::REQ_ZIPF, (range.start / ZIPF_CHUNK) as u64);
            range.map(|_| zipf.sample(&mut rng) as u32).collect()
        });
        let mut counts = vec![0u64; n];
        for rank in drawn {
            counts[page_of_rank[rank as usize]] += 1;
        }
        let max_count = counts.iter().copied().max().unwrap_or(0).max(1);

        let decays: Vec<AgeDecay> = config
            .class_gammas
            .iter()
            .map(|&g| AgeDecay::new(g).expect("validated gammas"))
            .collect();
        Ok(Self {
            config: config.clone(),
            seed,
            rank_of,
            counts,
            max_count,
            decays,
        })
    }

    /// Number of pages the stream was prepared for.
    pub fn page_count(&self) -> usize {
        self.rank_of.len()
    }

    /// The multinomially drawn request count of one page (zero for pages
    /// that draw no requests — the cheap skip test before regeneration).
    pub fn count(&self, page_idx: usize) -> u64 {
        self.counts[page_idx]
    }

    /// The request config the stream draws from.
    pub fn config(&self) -> &RequestConfig {
        &self.config
    }

    /// Appends all of page `page_idx`'s request events to `out` (phases
    /// 3–4: age-decay times, per-day server pools), drawing from that
    /// page's own substream. A no-op for pages with no drawn requests.
    /// Events are time-sorted within the page but unsorted against other
    /// pages; callers sort (stably) after concatenation, exactly like the
    /// full generator.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` is outside the prepared page table or `pages`
    /// is shorter than it.
    pub fn append_page_requests(
        &self,
        pages: &[PageMeta],
        page_idx: usize,
        out: &mut Vec<RequestEvent>,
    ) {
        let count = self.counts[page_idx];
        if count == 0 {
            return;
        }
        let mut rng = seeds::stream_rng(self.seed, seeds::REQ_PAGE, page_idx as u64);
        place_page_requests(
            out,
            &mut rng,
            &pages[page_idx],
            count,
            self.max_count,
            self.rank_of[page_idx],
            &self.config,
            &self.decays,
        );
    }
}

/// Emits `count` requests for one page: age-decay times plus the per-day
/// candidate-server pools of eq. 6 (shared by the substream and legacy
/// generators; all randomness comes from the caller's `rng`).
#[allow(clippy::too_many_arguments)]
fn place_page_requests(
    out: &mut Vec<RequestEvent>,
    rng: &mut StdRng,
    page: &PageMeta,
    count: u64,
    max_count: u64,
    rank: usize,
    config: &RequestConfig,
    decays: &[AgeDecay],
) {
    let horizon_h = config.horizon.as_hours_f64();
    let total_days = (config.horizon.as_days_f64().ceil() as usize).max(1);
    let class = popularity_class_shifted(rank, config.zipf_alpha, config.zipf_shift);
    let publish_h = page.publish_time().as_hours_f64();
    let span_h = (horizon_h - publish_h).max(0.0);

    // Request instants.
    let mut times: Vec<SimTime> = (0..count)
        .map(|_| {
            let age = decays[class].sample_age_hours(rng, span_h);
            SimTime::from_hours_f64(publish_h + age)
                .min(config.horizon.saturating_since(SimTime::from_millis(1)))
        })
        .collect();
    times.sort_unstable();

    // Per-day server pools (eq. 6 + 60% overlap).
    let rel = count as f64 / max_count as f64;
    let pool_size = ((config.servers as f64 * rel.powf(config.server_exponent)).ceil() as usize)
        .clamp(1, config.servers as usize);
    let mut pool = sample_distinct(rng, config.servers as usize, pool_size);
    let mut pool_day = times
        .first()
        .map(|t| t.day_index())
        .unwrap_or(0)
        .min(total_days - 1);

    for &t in &times {
        let day = t.day_index().min(total_days - 1);
        if day != pool_day {
            // Roll the pool forward day by day, applying the overlap.
            for _ in pool_day..day {
                pool = roll_pool(rng, &pool, config.servers as usize, config.day_overlap);
            }
            pool_day = day;
        }
        let server = pool[rng.random_range(0..pool.len())];
        out.push(RequestEvent::new(t, ServerId::new(server), page.id()));
    }
}

/// The pre-substream generator: one `StdRng` threaded through every draw.
///
/// Kept as a compatibility constructor for traces generated before the
/// parallel cold path landed. New code should use [`generate_requests`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] for invalid configs or an empty
/// page table.
pub fn generate_requests_legacy(
    pages: &[PageMeta],
    config: &RequestConfig,
    seed: u64,
) -> Result<RequestTrace, WorkloadError> {
    config.validate()?;
    if pages.is_empty() {
        return Err(WorkloadError::invalid("pages", "non-empty page table"));
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
    let n = pages.len();

    // (1) Random rank permutation: rank_of[page] in 1..=n.
    let mut ranks: Vec<usize> = (1..=n).collect();
    ranks.shuffle(&mut rng);
    let rank_of = ranks; // rank_of[page_index] = rank

    // (2) Multinomial draw of per-page request counts.
    let zipf = Zipf::with_shift(n, config.zipf_alpha, config.zipf_shift)
        .expect("validated zipf parameters");
    let mut page_of_rank = vec![0usize; n + 1];
    for (page, &rank) in rank_of.iter().enumerate() {
        page_of_rank[rank] = page;
    }
    let mut counts = vec![0u64; n];
    for _ in 0..config.total_requests {
        counts[page_of_rank[zipf.sample(&mut rng)]] += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(0).max(1);

    // (3)+(4) Timing and server assignment.
    let decays: Vec<AgeDecay> = config
        .class_gammas
        .iter()
        .map(|&g| AgeDecay::new(g).expect("validated gammas"))
        .collect();
    let mut events: Vec<RequestEvent> = Vec::with_capacity(config.total_requests as usize);
    for (page_idx, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        place_page_requests(
            &mut events,
            &mut rng,
            &pages[page_idx],
            count,
            max_count,
            rank_of[page_idx],
            config,
            &decays,
        );
    }

    Ok(RequestTrace::from_unsorted(events))
}

/// Draws `k` distinct values from `0..n`.
fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<u16> {
    debug_assert!(k <= n);
    let mut all: Vec<u16> = (0..n as u16).collect();
    let _ = all.partial_shuffle(rng, k);
    all.truncate(k);
    all
}

/// Keeps `overlap` of the pool and replaces the rest with servers outside
/// the current pool (when available).
fn roll_pool(rng: &mut StdRng, pool: &[u16], n: usize, overlap: f64) -> Vec<u16> {
    let keep = ((pool.len() as f64 * overlap).round() as usize).min(pool.len());
    let mut kept: Vec<u16> = pool.to_vec();
    let _ = kept.partial_shuffle(rng, keep);
    kept.truncate(keep);
    let need = pool.len() - keep;
    if need > 0 {
        let mut outside: Vec<u16> = (0..n as u16).filter(|s| !pool.contains(s)).collect();
        if outside.len() >= need {
            let _ = outside.partial_shuffle(rng, need);
            outside.truncate(need);
            kept.extend(outside);
        } else {
            // Not enough outsiders (pool ~ whole population): refill from
            // anywhere while keeping entries distinct.
            kept.extend(outside);
            let mut rest: Vec<u16> = (0..n as u16).filter(|s| !kept.contains(s)).collect();
            let take = (pool.len() - kept.len()).min(rest.len());
            let _ = rest.partial_shuffle(rng, take);
            kept.extend(rest.into_iter().take(take));
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_publishing, PublishingConfig};

    fn pages() -> Vec<PageMeta> {
        let cfg = PublishingConfig {
            distinct_pages: 200,
            updated_pages: 80,
            total_pages: 600,
            ..PublishingConfig::paper()
        };
        generate_publishing(&cfg, 11).unwrap().pages
    }

    fn small_config() -> RequestConfig {
        RequestConfig {
            servers: 20,
            total_requests: 5_000,
            ..RequestConfig::news()
        }
    }

    #[test]
    fn exact_request_count_sorted_and_valid() {
        let pages = pages();
        let trace = generate_requests(&pages, &small_config(), 1).unwrap();
        assert_eq!(trace.len(), 5_000);
        assert!(trace.validate(pages.len(), 20).is_ok());
        let times: Vec<_> = trace.iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn requests_start_after_publication() {
        let pages = pages();
        let cfg = small_config();
        let trace = generate_requests(&pages, &cfg, 2).unwrap();
        for ev in &trace {
            let page = &pages[ev.page.as_usize()];
            assert!(ev.time >= page.publish_time());
            assert!(ev.time < cfg.horizon);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let pages = pages();
        let a = generate_requests(&pages, &small_config(), 3).unwrap();
        let b = generate_requests(&pages, &small_config(), 3).unwrap();
        let c = generate_requests(&pages, &small_config(), 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_generation_is_bit_identical() {
        let pages = pages();
        // Spans multiple ZIPF_CHUNK blocks to exercise chunk seeding.
        let cfg = RequestConfig {
            servers: 20,
            total_requests: 20_000,
            ..RequestConfig::news()
        };
        for seed in [0, 3, 77] {
            let seq = generate_requests_threads(&pages, &cfg, seed, 1).unwrap();
            for threads in [2, 4, 0] {
                let par = generate_requests_threads(&pages, &cfg, seed, threads).unwrap();
                assert_eq!(seq, par, "threads = {threads}, seed = {seed}");
            }
        }
    }

    #[test]
    fn legacy_generator_differs_but_matches_shape() {
        let pages = pages();
        let new = generate_requests(&pages, &small_config(), 3).unwrap();
        let old = generate_requests_legacy(&pages, &small_config(), 3).unwrap();
        assert_eq!(old.len(), new.len());
        assert!(old.validate(pages.len(), 20).is_ok());
        assert_ne!(old, new);
        assert_eq!(
            old,
            generate_requests_legacy(&pages, &small_config(), 3).unwrap()
        );
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let pages = pages();
        let trace = generate_requests(&pages, &small_config(), 5).unwrap();
        let mut counts = vec![0u64; pages.len()];
        for ev in &trace {
            counts[ev.page.as_usize()] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Head pages well above the tail (Zipf-Mandelbrot body/tail skew).
        let head_mean: f64 = counts[..20].iter().map(|&c| c as f64).sum::<f64>() / 20.0;
        let tail_mean: f64 = counts[counts.len() / 2..]
            .iter()
            .map(|&c| c as f64)
            .sum::<f64>()
            / (counts.len() - counts.len() / 2) as f64;
        assert!(
            head_mean > 5.0 * tail_mean.max(0.05),
            "head mean {head_mean} vs tail mean {tail_mean}"
        );
    }

    #[test]
    fn popular_pages_touch_more_servers() {
        let pages = pages();
        let trace = generate_requests(&pages, &small_config(), 6).unwrap();
        use std::collections::{HashMap, HashSet};
        let mut counts: HashMap<u32, u64> = HashMap::new();
        let mut servers: HashMap<u32, HashSet<u16>> = HashMap::new();
        for ev in &trace {
            *counts.entry(ev.page.index()).or_default() += 1;
            servers
                .entry(ev.page.index())
                .or_default()
                .insert(ev.server.index());
        }
        let top = counts
            .iter()
            .max_by_key(|&(_, c)| *c)
            .map(|(p, _)| *p)
            .unwrap();
        let singles: Vec<u32> = counts
            .iter()
            .filter(|&(_, c)| *c <= 2)
            .map(|(p, _)| *p)
            .collect();
        let avg_single: f64 = singles.iter().map(|p| servers[p].len() as f64).sum::<f64>()
            / singles.len().max(1) as f64;
        assert!(servers[&top].len() as f64 > avg_single);
    }

    #[test]
    fn popularity_class_thresholds() {
        // alpha=1.5: class 0 while 1.5*log10(r) < 1 -> r <= 4.
        assert_eq!(popularity_class(1, 1.5), 0);
        assert_eq!(popularity_class(4, 1.5), 0);
        assert_eq!(popularity_class(5, 1.5), 1);
        assert_eq!(popularity_class(10_000, 1.5), 3);
        // alpha=1.0: decade boundaries.
        assert_eq!(popularity_class(9, 1.0), 0);
        assert_eq!(popularity_class(10, 1.0), 1);
        assert_eq!(popularity_class(100, 1.0), 2);
        assert_eq!(popularity_class(1_000, 1.0), 3);
        assert_eq!(popularity_class(100_000, 1.0), 3);
    }

    #[test]
    fn invalid_configs_rejected() {
        let pages = pages();
        let mut c = small_config();
        c.servers = 0;
        assert!(generate_requests(&pages, &c, 0).is_err());
        assert!(generate_requests_legacy(&pages, &c, 0).is_err());
        let mut c = small_config();
        c.total_requests = 0;
        assert!(generate_requests(&pages, &c, 0).is_err());
        let mut c = small_config();
        c.zipf_alpha = -0.5;
        assert!(generate_requests(&pages, &c, 0).is_err());
        let mut c = small_config();
        c.day_overlap = 1.5;
        assert!(generate_requests(&pages, &c, 0).is_err());
        let mut c = small_config();
        c.class_gammas[2] = f64::NAN;
        assert!(generate_requests(&pages, &c, 0).is_err());
        let mut c = small_config();
        c.server_exponent = 0.0;
        assert!(generate_requests(&pages, &c, 0).is_err());
        assert!(generate_requests(&[], &small_config(), 0).is_err());
        assert!(generate_requests_legacy(&[], &small_config(), 0).is_err());
    }

    #[test]
    fn single_server_population_works() {
        let pages = pages();
        let cfg = RequestConfig {
            servers: 1,
            total_requests: 500,
            ..RequestConfig::news()
        };
        let trace = generate_requests(&pages, &cfg, 7).unwrap();
        assert!(trace.iter().all(|e| e.server == ServerId::new(0)));
    }

    #[test]
    fn roll_pool_keeps_size_and_distinctness() {
        let mut rng = StdRng::seed_from_u64(9);
        let pool = sample_distinct(&mut rng, 50, 10);
        assert_eq!(pool.len(), 10);
        let rolled = roll_pool(&mut rng, &pool, 50, 0.6);
        assert_eq!(rolled.len(), 10);
        let distinct: std::collections::HashSet<_> = rolled.iter().collect();
        assert_eq!(distinct.len(), 10);
        let kept = rolled.iter().filter(|s| pool.contains(s)).count();
        assert_eq!(kept, 6);
    }

    #[test]
    fn roll_pool_full_population_degenerates_gracefully() {
        let mut rng = StdRng::seed_from_u64(10);
        let pool: Vec<u16> = (0..10).collect();
        let rolled = roll_pool(&mut rng, &pool, 10, 0.6);
        assert_eq!(rolled.len(), 10);
        let distinct: std::collections::HashSet<_> = rolled.iter().collect();
        assert_eq!(distinct.len(), 10);
    }
}
