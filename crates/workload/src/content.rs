//! Synthetic page-content descriptors for the content-based matcher.
//!
//! The paper's workload only models subscription *counts* (§4.3), but the
//! `pscd-matching` crate ships a full content-based engine. This module
//! bridges the two for examples and integration tests: it deterministically
//! assigns each page a news-like attribute map (category, tags, length) so
//! real subscriptions can be matched against the synthetic stream.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pscd_matching::{Content, EngineMatcher, Predicate, Subscription, Value};
use pscd_types::{PageId, PageKind, PageMeta, SubscriptionTable};

/// News categories used by the synthetic content model.
pub const CATEGORIES: [&str; 10] = [
    "politics",
    "business",
    "technology",
    "sports",
    "health",
    "science",
    "entertainment",
    "world",
    "local",
    "weather",
];

/// Tag vocabulary used by the synthetic content model.
pub const TAGS: [&str; 20] = [
    "breaking", "election", "markets", "startup", "ai", "tennis", "football", "medicine", "space",
    "climate", "movies", "music", "europe", "asia", "americas", "crime", "courts", "storm",
    "economy", "research",
];

/// Deterministic page → attribute-map assignment.
///
/// A page's content depends only on the model seed and the page's *origin*
/// (modified versions keep their original's category and tags — they are
/// updates of the same article), which is what makes subscription counts
/// stable across versions.
///
/// # Examples
///
/// ```
/// use pscd_matching::Value;
/// use pscd_types::{Bytes, PageId, PageKind, PageMeta, SimTime};
/// use pscd_workload::ContentModel;
///
/// let model = ContentModel::new(7);
/// let page = PageMeta::new(PageId::new(3), Bytes::new(4096), SimTime::ZERO, PageKind::Original);
/// let c = model.content_for(&page);
/// assert!(c.get("category").is_some());
/// assert_eq!(c.get("bytes"), Some(&Value::int(4096)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentModel {
    seed: u64,
}

impl ContentModel {
    /// Creates a content model with the given seed.
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The attribute map for one page.
    pub fn content_for(&self, page: &PageMeta) -> Content {
        let origin = match page.kind() {
            PageKind::Original => page.id(),
            PageKind::Modified { origin, .. } => origin,
        };
        let mut rng = self.article_rng(origin);
        let category = CATEGORIES[rng.random_range(0..CATEGORIES.len())];
        let tag_count = rng.random_range(1..=4usize);
        let mut tags: Vec<&str> = Vec::with_capacity(tag_count);
        for _ in 0..tag_count {
            let t = TAGS[rng.random_range(0..TAGS.len())];
            if !tags.contains(&t) {
                tags.push(t);
            }
        }
        let version = match page.kind() {
            PageKind::Original => 0,
            PageKind::Modified { version, .. } => version as i64,
        };
        Content::new()
            .with("category", Value::str(category))
            .with("tags", Value::tags(tags))
            .with("bytes", Value::int(page.size().as_u64() as i64))
            .with("version", Value::int(version))
    }

    /// The category assigned to the article behind `origin`.
    pub fn category_of(&self, origin: PageId) -> &'static str {
        let mut rng = self.article_rng(origin);
        CATEGORIES[rng.random_range(0..CATEGORIES.len())]
    }

    fn article_rng(&self, origin: PageId) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(origin.index() as u64),
        )
    }
}

/// Synthesizes an [`EngineMatcher`] whose content-based evaluation
/// reproduces `table` exactly: every page is registered with a content
/// carrying its own id (`page = <id>`), and each `(page, server, count)`
/// row of the table becomes `count` subscriptions equal-matching that id.
///
/// This is the bridge from the paper's count-based subscription model
/// (§4.3) to the content-based engine: a replay resolved through the
/// returned matcher — including its frozen compilation — is bit-identical
/// to one resolved through the table, which is what the engine-backed
/// trace-compile differential asserts.
///
/// The matcher is returned *unfrozen*; callers freeze it once after any
/// further synthesis ([`EngineMatcher::freeze`]).
///
/// # Panics
///
/// Panics if a table row references a server at or beyond `servers`.
pub fn matcher_from_table(table: &SubscriptionTable, servers: u16) -> EngineMatcher {
    let mut matcher = EngineMatcher::new(servers);
    for page in 0..table.page_count() {
        matcher.register_page(
            PageId::new(page as u32),
            Content::new().with("page", Value::int(page as i64)),
        );
    }
    for (page, server, count) in table.iter() {
        let sub = Subscription::new(vec![Predicate::eq("page", Value::int(page.index() as i64))]);
        for _ in 0..count {
            matcher
                .subscribe(server, sub.clone())
                .expect("table row references a server inside the fleet");
        }
    }
    matcher
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_types::{Bytes, ServerId, SimTime, SubscriptionTableBuilder};

    fn page(id: u32, kind: PageKind) -> PageMeta {
        PageMeta::new(PageId::new(id), Bytes::new(1000), SimTime::ZERO, kind)
    }

    #[test]
    fn deterministic_per_page() {
        let m = ContentModel::new(1);
        let p = page(5, PageKind::Original);
        assert_eq!(m.content_for(&p), m.content_for(&p));
    }

    #[test]
    fn versions_share_article_attributes() {
        let m = ContentModel::new(2);
        let original = page(3, PageKind::Original);
        let update = page(
            9,
            PageKind::Modified {
                origin: PageId::new(3),
                version: 2,
            },
        );
        let a = m.content_for(&original);
        let b = m.content_for(&update);
        assert_eq!(a.get("category"), b.get("category"));
        assert_eq!(a.get("tags"), b.get("tags"));
        assert_eq!(a.get("version"), Some(&Value::int(0)));
        assert_eq!(b.get("version"), Some(&Value::int(2)));
    }

    #[test]
    fn category_of_matches_content() {
        let m = ContentModel::new(3);
        let p = page(7, PageKind::Original);
        let c = m.content_for(&p);
        assert_eq!(
            c.get("category"),
            Some(&Value::str(m.category_of(PageId::new(7))))
        );
    }

    #[test]
    fn different_seeds_shuffle_categories() {
        let a = ContentModel::new(10);
        let b = ContentModel::new(11);
        let differs =
            (0..50).any(|i| a.category_of(PageId::new(i)) != b.category_of(PageId::new(i)));
        assert!(differs);
    }

    #[test]
    fn matcher_from_table_reproduces_every_row() {
        use pscd_matching::Matcher;
        let mut b = SubscriptionTableBuilder::new(4);
        b.add(PageId::new(0), ServerId::new(1), 3);
        b.add(PageId::new(0), ServerId::new(2), 1);
        b.add(PageId::new(2), ServerId::new(0), 7);
        let table = b.build();
        let mut m = matcher_from_table(&table, 3);
        m.freeze();
        for page in 0..4u32 {
            let page = PageId::new(page);
            assert_eq!(
                m.matched_servers(page).as_slice(),
                table.matched_servers(page),
                "page {page:?}"
            );
            for server in 0..3u16 {
                let server = ServerId::new(server);
                assert_eq!(m.match_count(page, server), table.count(page, server));
            }
        }
    }

    #[test]
    fn tags_are_nonempty_and_bounded() {
        let m = ContentModel::new(4);
        for i in 0..30 {
            let c = m.content_for(&page(i, PageKind::Original));
            match c.get("tags") {
                Some(Value::Tags(t)) => assert!(!t.is_empty() && t.len() <= 4),
                other => panic!("expected tags, got {other:?}"),
            }
        }
    }
}
