//! Publishing-stream generation (paper §4.1).

use pscd_pool::parallel_chunked;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use pscd_types::{Bytes, PageId, PageKind, PageMeta, PublishEvent, PublishingStream, SimTime};

use crate::{seeds, LogNormal, StepwiseInterval, WorkloadError};

/// Entities per pool job in the parallel publishing fan-outs. Purely a
/// scheduling granularity: every entity draws from its own substream, so
/// the output is identical at any chunk size or thread count.
const ENTITY_CHUNK: usize = 1024;

/// Configuration of the publishing stream.
///
/// Defaults reproduce the paper's MSNBC-derived numbers: 30,147 pages over
/// 7 days, of which 6,000 are distinct originals and 2,400 of those receive
/// the ~24,000 modified versions; log-normal sizes with `mu = 9.357`,
/// `sigma = 1.318`; step-wise modification intervals (5% < 1 h, 5% > 1 day).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishingConfig {
    /// Number of distinct original pages (paper: 6,000).
    pub distinct_pages: usize,
    /// How many of the originals receive modified versions (paper: 2,400).
    pub updated_pages: usize,
    /// Total pages published, originals + modified versions (paper: 30,147).
    pub total_pages: usize,
    /// Simulation horizon (paper: 7 days).
    pub horizon: SimTime,
    /// Location of `ln(bytes)` for page sizes (paper: 9.357).
    pub size_mu: f64,
    /// Scale of `ln(bytes)` for page sizes (paper: 1.318).
    pub size_sigma: f64,
    /// Smallest page size generated (floor applied after sampling).
    pub min_page_bytes: u64,
    /// Largest page size generated (cap applied after sampling).
    pub max_page_bytes: u64,
    /// Modification-interval distribution.
    pub intervals: StepwiseInterval,
}

impl PublishingConfig {
    /// The paper's full-scale configuration.
    pub fn paper() -> Self {
        Self {
            distinct_pages: 6_000,
            updated_pages: 2_400,
            total_pages: 30_147,
            horizon: SimTime::from_days(7),
            size_mu: 9.357,
            size_sigma: 1.318,
            min_page_bytes: 128,
            max_page_bytes: 64 * 1024 * 1024,
            intervals: StepwiseInterval::paper(),
        }
    }

    /// A proportionally scaled-down configuration (`factor` in `(0, 1]`),
    /// for fast tests and benches. The horizon stays 7 days; page counts
    /// shrink.
    pub fn scaled(factor: f64) -> Self {
        let p = Self::paper();
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        Self {
            distinct_pages: scale(p.distinct_pages),
            updated_pages: scale(p.updated_pages).min(scale(p.distinct_pages)),
            total_pages: scale(p.total_pages).max(scale(p.distinct_pages)),
            ..p
        }
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if self.distinct_pages == 0 {
            return Err(WorkloadError::invalid("distinct_pages", ">= 1"));
        }
        if self.updated_pages > self.distinct_pages {
            return Err(WorkloadError::invalid("updated_pages", "<= distinct_pages"));
        }
        if self.total_pages < self.distinct_pages {
            return Err(WorkloadError::invalid("total_pages", ">= distinct_pages"));
        }
        if self.total_pages > self.distinct_pages && self.updated_pages == 0 {
            return Err(WorkloadError::invalid(
                "updated_pages",
                ">= 1 when total_pages > distinct_pages",
            ));
        }
        if self.horizon == SimTime::ZERO {
            return Err(WorkloadError::invalid("horizon", "> 0"));
        }
        if !self.size_sigma.is_finite() || self.size_sigma < 0.0 || !self.size_mu.is_finite() {
            return Err(WorkloadError::invalid(
                "size_mu/size_sigma",
                "finite, sigma >= 0",
            ));
        }
        if self.min_page_bytes == 0 || self.max_page_bytes < self.min_page_bytes {
            return Err(WorkloadError::invalid(
                "min_page_bytes/max_page_bytes",
                "0 < min <= max",
            ));
        }
        Ok(())
    }
}

impl Default for PublishingConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The generated page table plus the time-ordered publishing stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishingOutput {
    /// All pages, indexed by [`PageId`].
    pub pages: Vec<PageMeta>,
    /// Publish events sorted by time.
    pub stream: PublishingStream,
}

/// Generates the publishing stream (deterministic in `seed`).
///
/// Original pages appear at uniformly random instants within the horizon;
/// each *updated* page has a fixed modification interval drawn from the
/// step-wise distribution, and its modified versions appear at multiples of
/// that interval after first publication. The natural number of modified
/// versions is then adjusted (by uniform subsampling or by adding extra
/// versions of random updated pages) to hit `total_pages` exactly, as the
/// paper fixes the 7-day stream at 30,147 pages.
///
/// Randomness comes from per-entity substreams ([`crate::seeds`]): each
/// original's first-publish instant, each origin's modification interval,
/// and each page's size draw from an independently seeded child stream, so
/// [`generate_publishing_threads`] produces **bit-identical** output on
/// any number of worker threads. The pre-substream single-stream scheme
/// survives as [`generate_publishing_legacy`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] for inconsistent configs.
///
/// # Examples
///
/// ```
/// use pscd_workload::{generate_publishing, PublishingConfig};
/// let out = generate_publishing(&PublishingConfig::scaled(0.01), 7)?;
/// assert_eq!(out.pages.len(), out.stream.len());
/// # Ok::<(), pscd_workload::WorkloadError>(())
/// ```
pub fn generate_publishing(
    config: &PublishingConfig,
    seed: u64,
) -> Result<PublishingOutput, WorkloadError> {
    generate_publishing_threads(config, seed, 1)
}

/// [`generate_publishing`] on up to `threads` pool workers (`0` = auto,
/// `1` = inline). Output is bit-identical at every thread count.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] for inconsistent configs.
pub fn generate_publishing_threads(
    config: &PublishingConfig,
    seed: u64,
    threads: usize,
) -> Result<PublishingOutput, WorkloadError> {
    config.validate()?;
    let sizes =
        LogNormal::new(config.size_mu, config.size_sigma).expect("validated size parameters");
    let horizon_ms = config.horizon.as_millis();

    // 1. Originals: uniform first-publish times, one substream each.
    let mut first_pub: Vec<SimTime> =
        parallel_chunked(config.distinct_pages, ENTITY_CHUNK, threads, |range| {
            range
                .map(|i| {
                    let mut rng = seeds::stream_rng(seed, seeds::PUB_TIME, i as u64);
                    SimTime::from_millis(rng.random_range(0..horizon_ms))
                })
                .collect()
        });
    first_pub.sort_unstable();

    // 2. Pick which originals get updated (structural draw, sequential —
    //    one shuffle of the index vector).
    let mut indices: Vec<usize> = (0..config.distinct_pages).collect();
    indices.shuffle(&mut seeds::stream_rng(seed, seeds::PUB_STRUCT, 0));
    let updated: Vec<usize> = indices[..config.updated_pages].to_vec();

    // 3. Natural modification times from fixed per-origin intervals, one
    //    substream per origin.
    let mut mods: Vec<(usize, SimTime)> =
        parallel_chunked(updated.len(), ENTITY_CHUNK, threads, |range| {
            let mut out = Vec::new();
            for k in range {
                let orig = updated[k];
                let mut rng = seeds::stream_rng(seed, seeds::PUB_INTERVAL, orig as u64);
                let interval = SimTime::from_hours_f64(config.intervals.sample_hours(&mut rng));
                if interval == SimTime::ZERO {
                    continue;
                }
                let mut t = first_pub[orig] + interval;
                while t < config.horizon {
                    out.push((orig, t));
                    t += interval;
                }
            }
            out
        });

    // 4. Adjust to exactly `total_pages` (sequential — the adjustment is a
    //    single global decision over the concatenated mod list).
    let mut rng = seeds::stream_rng(seed, seeds::PUB_ADJUST, 0);
    let needed = config.total_pages - config.distinct_pages;
    if mods.len() > needed {
        mods.shuffle(&mut rng);
        mods.truncate(needed);
    } else {
        while mods.len() < needed {
            let orig = updated[rng.random_range(0..updated.len())];
            let lo = first_pub[orig].as_millis();
            if lo + 1 >= horizon_ms {
                // Original published at the very end; pick another.
                continue;
            }
            let t = SimTime::from_millis(rng.random_range(lo + 1..horizon_ms));
            mods.push((orig, t));
        }
    }
    mods.sort_unstable_by_key(|&(orig, t)| (t, orig));

    // 5. Page sizes: one substream per final page id.
    let size_of: Vec<Bytes> =
        parallel_chunked(config.total_pages, ENTITY_CHUNK, threads, |range| {
            range
                .map(|id| {
                    let mut rng = seeds::stream_rng(seed, seeds::PUB_SIZE, id as u64);
                    let raw = sizes.sample(&mut rng).round().max(0.0) as u64;
                    Bytes::new(raw.clamp(config.min_page_bytes, config.max_page_bytes))
                })
                .collect()
        });

    // 6. Materialize page metadata: originals first, then modifications in
    //    publish order; version numbers count per origin.
    let mut pages: Vec<PageMeta> = Vec::with_capacity(config.total_pages);
    for (i, &t) in first_pub.iter().enumerate() {
        pages.push(PageMeta::new(
            PageId::new(i as u32),
            size_of[i],
            t,
            PageKind::Original,
        ));
    }
    let mut version_counter = vec![0u32; config.distinct_pages];
    for (k, &(orig, t)) in mods.iter().enumerate() {
        version_counter[orig] += 1;
        let id = config.distinct_pages + k;
        pages.push(PageMeta::new(
            PageId::new(id as u32),
            size_of[id],
            t,
            PageKind::Modified {
                origin: PageId::new(orig as u32),
                version: version_counter[orig],
            },
        ));
    }

    let events: Vec<PublishEvent> = pages
        .iter()
        .map(|p| PublishEvent::new(p.publish_time(), p.id()))
        .collect();
    let stream = PublishingStream::from_unsorted(events);
    Ok(PublishingOutput { pages, stream })
}

/// The pre-substream generator: one `StdRng` threaded through every draw.
///
/// Kept as a compatibility constructor for workloads generated before the
/// parallel cold path landed; the draw order makes it inherently serial.
/// New code should use [`generate_publishing`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidConfig`] for inconsistent configs.
pub fn generate_publishing_legacy(
    config: &PublishingConfig,
    seed: u64,
) -> Result<PublishingOutput, WorkloadError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let sizes =
        LogNormal::new(config.size_mu, config.size_sigma).expect("validated size parameters");
    let horizon_ms = config.horizon.as_millis();

    // 1. Originals: uniform first-publish times.
    let mut first_pub: Vec<SimTime> = (0..config.distinct_pages)
        .map(|_| SimTime::from_millis(rng.random_range(0..horizon_ms)))
        .collect();
    first_pub.sort_unstable();

    // 2. Pick which originals get updated.
    let mut indices: Vec<usize> = (0..config.distinct_pages).collect();
    indices.shuffle(&mut rng);
    let updated: Vec<usize> = indices[..config.updated_pages].to_vec();

    // 3. Natural modification times from fixed per-page intervals.
    let mut mods: Vec<(usize, SimTime)> = Vec::new();
    for &orig in &updated {
        let interval = SimTime::from_hours_f64(config.intervals.sample_hours(&mut rng));
        if interval == SimTime::ZERO {
            continue;
        }
        let mut t = first_pub[orig] + interval;
        while t < config.horizon {
            mods.push((orig, t));
            t += interval;
        }
    }

    // 4. Adjust to exactly `total_pages`.
    let needed = config.total_pages - config.distinct_pages;
    if mods.len() > needed {
        mods.shuffle(&mut rng);
        mods.truncate(needed);
    } else {
        while mods.len() < needed {
            let orig = updated[rng.random_range(0..updated.len())];
            let lo = first_pub[orig].as_millis();
            if lo + 1 >= horizon_ms {
                // Original published at the very end; pick another.
                continue;
            }
            let t = SimTime::from_millis(rng.random_range(lo + 1..horizon_ms));
            mods.push((orig, t));
        }
    }
    mods.sort_unstable_by_key(|&(orig, t)| (t, orig));

    // 5. Materialize page metadata: originals first, then modifications in
    //    publish order; version numbers count per origin.
    let sample_size = |rng: &mut StdRng| {
        let raw = sizes.sample(rng).round().max(0.0) as u64;
        Bytes::new(raw.clamp(config.min_page_bytes, config.max_page_bytes))
    };
    let mut pages: Vec<PageMeta> = Vec::with_capacity(config.total_pages);
    for (i, &t) in first_pub.iter().enumerate() {
        let size = sample_size(&mut rng);
        pages.push(PageMeta::new(
            PageId::new(i as u32),
            size,
            t,
            PageKind::Original,
        ));
    }
    let mut version_counter = vec![0u32; config.distinct_pages];
    for (k, &(orig, t)) in mods.iter().enumerate() {
        version_counter[orig] += 1;
        let size = sample_size(&mut rng);
        pages.push(PageMeta::new(
            PageId::new((config.distinct_pages + k) as u32),
            size,
            t,
            PageKind::Modified {
                origin: PageId::new(orig as u32),
                version: version_counter[orig],
            },
        ));
    }

    let events: Vec<PublishEvent> = pages
        .iter()
        .map(|p| PublishEvent::new(p.publish_time(), p.id()))
        .collect();
    let stream = PublishingStream::from_unsorted(events);
    Ok(PublishingOutput { pages, stream })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PublishingConfig {
        PublishingConfig {
            distinct_pages: 100,
            updated_pages: 40,
            total_pages: 400,
            ..PublishingConfig::paper()
        }
    }

    #[test]
    fn exact_page_count_and_sorted_stream() {
        let out = generate_publishing(&small(), 1).unwrap();
        assert_eq!(out.pages.len(), 400);
        assert_eq!(out.stream.len(), 400);
        let times: Vec<_> = out.stream.iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_publishing(&small(), 5).unwrap();
        let b = generate_publishing(&small(), 5).unwrap();
        let c = generate_publishing(&small(), 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_generation_is_bit_identical() {
        for seed in [0, 5, 99] {
            let seq = generate_publishing_threads(&small(), seed, 1).unwrap();
            for threads in [2, 4, 0] {
                let par = generate_publishing_threads(&small(), seed, threads).unwrap();
                assert_eq!(seq, par, "threads = {threads}, seed = {seed}");
            }
        }
    }

    #[test]
    fn legacy_generator_differs_but_matches_shape() {
        let new = generate_publishing(&small(), 5).unwrap();
        let old = generate_publishing_legacy(&small(), 5).unwrap();
        assert_eq!(old.pages.len(), new.pages.len());
        assert_eq!(old.stream.len(), new.stream.len());
        // Different draw schemes: same seed, different streams.
        assert_ne!(old, new);
        // Legacy stays deterministic too.
        assert_eq!(old, generate_publishing_legacy(&small(), 5).unwrap());
    }

    #[test]
    fn originals_then_modifications() {
        let cfg = small();
        let out = generate_publishing(&cfg, 2).unwrap();
        for (i, p) in out.pages.iter().enumerate() {
            assert_eq!(p.id().as_usize(), i);
            if i < cfg.distinct_pages {
                assert!(p.kind().is_original());
            } else {
                let origin = p.kind().origin().expect("modified pages have origins");
                assert!(origin.as_usize() < cfg.distinct_pages);
                // Modified versions publish strictly after their original.
                assert!(p.publish_time() > out.pages[origin.as_usize()].publish_time());
            }
        }
    }

    #[test]
    fn versions_count_up_per_origin() {
        let out = generate_publishing(&small(), 3).unwrap();
        use std::collections::HashMap;
        let mut seen: HashMap<PageId, u32> = HashMap::new();
        // Modified pages are ordered by publish time, so versions of one
        // origin must increase by 1 each.
        for p in &out.pages[100..] {
            if let PageKind::Modified { origin, version } = p.kind() {
                let next = seen.entry(origin).or_insert(0);
                *next += 1;
                assert_eq!(version, *next);
            }
        }
    }

    #[test]
    fn sizes_within_bounds_and_within_horizon() {
        let cfg = small();
        let out = generate_publishing(&cfg, 4).unwrap();
        for p in &out.pages {
            assert!(p.size().as_u64() >= cfg.min_page_bytes);
            assert!(p.size().as_u64() <= cfg.max_page_bytes);
            assert!(p.publish_time() < cfg.horizon);
        }
    }

    #[test]
    fn paper_scale_counts() {
        let cfg = PublishingConfig::paper();
        let out = generate_publishing(&cfg, 0).unwrap();
        assert_eq!(out.pages.len(), 30_147);
        let originals = out.pages.iter().filter(|p| p.kind().is_original()).count();
        assert_eq!(originals, 6_000);
        // The ~24k modified versions must come from <= 2,400 origins. The
        // truncation in step 4 drops a sparse-origin tail whose exact size
        // depends on the RNG stream, so the lower bound is a sanity floor
        // (most update-eligible origins keep at least one version), not a
        // pinned count.
        use std::collections::HashSet;
        let origins: HashSet<_> = out.pages.iter().filter_map(|p| p.kind().origin()).collect();
        assert!(origins.len() <= 2_400);
        assert!(origins.len() > 1_800, "origins = {}", origins.len());
    }

    #[test]
    fn scaled_config_shrinks() {
        let s = PublishingConfig::scaled(0.1);
        assert_eq!(s.distinct_pages, 600);
        assert_eq!(s.updated_pages, 240);
        assert_eq!(s.total_pages, 3_015);
        assert!(generate_publishing(&s, 1).is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = small();
        c.distinct_pages = 0;
        assert!(generate_publishing(&c, 0).is_err());
        assert!(generate_publishing_legacy(&c, 0).is_err());
        let mut c = small();
        c.updated_pages = c.distinct_pages + 1;
        assert!(generate_publishing(&c, 0).is_err());
        let mut c = small();
        c.total_pages = c.distinct_pages - 1;
        assert!(generate_publishing(&c, 0).is_err());
        let mut c = small();
        c.updated_pages = 0;
        assert!(generate_publishing(&c, 0).is_err());
        let mut c = small();
        c.horizon = SimTime::ZERO;
        assert!(generate_publishing(&c, 0).is_err());
        let mut c = small();
        c.size_sigma = -1.0;
        assert!(generate_publishing(&c, 0).is_err());
        let mut c = small();
        c.min_page_bytes = 0;
        assert!(generate_publishing(&c, 0).is_err());
        let mut c = small();
        c.max_page_bytes = c.min_page_bytes - 1;
        assert!(generate_publishing(&c, 0).is_err());
    }

    #[test]
    fn no_modifications_case() {
        let cfg = PublishingConfig {
            distinct_pages: 50,
            updated_pages: 0,
            total_pages: 50,
            ..PublishingConfig::paper()
        };
        let out = generate_publishing(&cfg, 9).unwrap();
        assert_eq!(out.pages.len(), 50);
        assert!(out.pages.iter().all(|p| p.kind().is_original()));
    }
}
