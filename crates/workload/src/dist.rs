//! Deterministic samplers for the workload's distributions.
//!
//! The paper's workload needs three non-uniform distributions: log-normal
//! page sizes (Barford & Crovella), Zipf page popularity (Breslau et al.),
//! and a step-wise modification-interval distribution calibrated to the
//! MSNBC observations. `rand` ships none of them, so they are implemented
//! here from scratch on top of uniform deviates.

use rand::Rng as RngCore;
use serde::{Deserialize, Serialize};

/// Log-normal sampler: `exp(mu + sigma * N(0,1))` via Box–Muller.
///
/// The paper's page sizes use `mu = 9.357`, `sigma = 1.318` over
/// `ln(bytes)` (§4.1, after Barford & Crovella), giving a median of
/// ~11.6 KB with a heavy tail.
///
/// # Examples
///
/// ```
/// use pscd_workload::LogNormal;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let ln = LogNormal::new(9.357, 1.318).unwrap();
/// let x = ln.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a sampler with location `mu` and scale `sigma` (of the
    /// underlying normal). Returns `None` if `sigma` is negative or either
    /// parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (mu.is_finite() && sigma.is_finite() && sigma >= 0.0).then_some(Self { mu, sigma })
    }

    /// The location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one log-normal deviate.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 in (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Zipf sampler over ranks `1..=n`: `P(rank = i) ∝ 1 / i^alpha`.
///
/// Sampling uses a precomputed CDF with binary search (O(log n) per draw),
/// which is exact and fast enough for the paper's 30k-page universe.
///
/// # Examples
///
/// ```
/// use pscd_workload::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let z = Zipf::new(100, 1.5).unwrap();
/// let rank = z.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    alpha: f64,
    shift: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `n >= 1` ranks with exponent
    /// `alpha >= 0`. Returns `None` for `n == 0` or invalid `alpha`.
    pub fn new(n: usize, alpha: f64) -> Option<Self> {
        Self::with_shift(n, alpha, 0.0)
    }

    /// Creates a Zipf–Mandelbrot sampler: `P(rank = i) ∝ 1/(shift + i)^alpha`.
    ///
    /// A positive `shift` flattens the head of the distribution while
    /// keeping the power-law body/tail — matching observed web popularity
    /// curves, whose Zipf exponent is fitted on the body while the top
    /// documents take a smaller share than a pure Zipf head would.
    /// Returns `None` for `n == 0`, invalid `alpha`, or negative/invalid
    /// `shift`.
    pub fn with_shift(n: usize, alpha: f64, shift: f64) -> Option<Self> {
        if n == 0 || !alpha.is_finite() || alpha < 0.0 || !shift.is_finite() || shift < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += (shift + i as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Some(Self { cdf, alpha, shift })
    }

    /// The Mandelbrot shift (0 for pure Zipf).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent `alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of drawing rank `i` (1-based). Zero outside `1..=n`.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[rank - 1];
        let lo = if rank >= 2 { self.cdf[rank - 2] } else { 0.0 };
        hi - lo
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // First index with cdf[i] >= u; that index is rank-1.
        let i = match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i,
        };
        (i + 1).min(self.cdf.len())
    }
}

/// The paper's step-wise modification-interval distribution (§4.1):
/// 5% of intervals are below one hour, 5% above one day, and the remaining
/// 90% uniform in `[1 hour, 1 day]`; the tails are uniform in
/// `[lower_floor, 1h)` and `(1d, upper_ceil]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepwiseInterval {
    /// Fraction of intervals below one hour (paper: 0.05).
    pub short_fraction: f64,
    /// Fraction of intervals above one day (paper: 0.05).
    pub long_fraction: f64,
    /// Shortest possible interval in hours (default 0.1 h = 6 min).
    pub min_hours: f64,
    /// Longest possible interval in hours (default 72 h = 3 days).
    pub max_hours: f64,
}

impl StepwiseInterval {
    /// The paper's parameterization.
    pub const fn paper() -> Self {
        Self {
            short_fraction: 0.05,
            long_fraction: 0.05,
            min_hours: 0.1,
            max_hours: 72.0,
        }
    }

    /// Draws a modification interval in hours.
    pub fn sample_hours<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        if u < self.short_fraction {
            rng.random_range(self.min_hours..1.0)
        } else if u < self.short_fraction + self.long_fraction {
            rng.random_range(24.0..self.max_hours)
        } else {
            rng.random_range(1.0..24.0)
        }
    }
}

impl Default for StepwiseInterval {
    fn default() -> Self {
        Self::paper()
    }
}

/// Power-law age-decay sampler on `[0, span]`: density `∝ (1 + age)^-gamma`
/// with `age` measured in hours.
///
/// Used to place a page's requests in time (§4.2): "the probability for the
/// page to be requested at a given time is inversely correlated to the
/// page's age", with stronger decay (`gamma`) for more popular classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgeDecay {
    gamma: f64,
}

impl AgeDecay {
    /// Creates a sampler with decay exponent `gamma >= 0`. Returns `None`
    /// for invalid exponents.
    pub fn new(gamma: f64) -> Option<Self> {
        (gamma.is_finite() && gamma >= 0.0).then_some(Self { gamma })
    }

    /// The decay exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Draws an age in hours from `[0, span_hours]` with density
    /// `∝ (1 + age)^-gamma` (inverse-CDF sampling).
    pub fn sample_age_hours<R: RngCore + ?Sized>(&self, rng: &mut R, span_hours: f64) -> f64 {
        let span = span_hours.max(0.0);
        if span == 0.0 {
            return 0.0;
        }
        let u: f64 = rng.random();
        let g = self.gamma;
        if (g - 1.0).abs() < 1e-9 {
            // CDF ∝ ln(1 + a); invert.
            let top = (1.0 + span).ln();
            ((u * top).exp() - 1.0).clamp(0.0, span)
        } else {
            // CDF ∝ ((1+a)^(1-g) - 1) / ((1+span)^(1-g) - 1)
            let p = 1.0 - g;
            let top = (1.0 + span).powf(p) - 1.0;
            ((1.0 + u * top).powf(1.0 / p) - 1.0).clamp(0.0, span)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn lognormal_validates_and_matches_moments() {
        assert!(LogNormal::new(1.0, -0.1).is_none());
        assert!(LogNormal::new(f64::NAN, 1.0).is_none());
        let ln = LogNormal::new(2.0, 0.5).unwrap();
        assert_eq!(ln.mu(), 2.0);
        assert_eq!(ln.sigma(), 0.5);
        let mut r = rng();
        let n = 20_000;
        let mean_log: f64 = (0..n).map(|_| ln.sample(&mut r).ln()).sum::<f64>() / n as f64;
        assert!((mean_log - 2.0).abs() < 0.02, "mean_log = {mean_log}");
    }

    #[test]
    fn lognormal_zero_sigma_is_deterministic() {
        let ln = LogNormal::new(3.0, 0.0).unwrap();
        let mut r = rng();
        let x = ln.sample(&mut r);
        assert!((x - 3.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn zipf_validates() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, -1.0).is_none());
        assert!(Zipf::new(10, f64::INFINITY).is_none());
        let z = Zipf::new(10, 1.5).unwrap();
        assert_eq!(z.n(), 10);
        assert_eq!(z.alpha(), 1.5);
    }

    #[test]
    fn zipf_probabilities_sum_to_one_and_decay() {
        let z = Zipf::new(100, 1.5).unwrap();
        let total: f64 = (1..=100).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.probability(1) > z.probability(2));
        assert!(z.probability(2) > z.probability(50));
        assert_eq!(z.probability(0), 0.0);
        assert_eq!(z.probability(101), 0.0);
        // Exact Zipf ratio: p(1)/p(2) = 2^alpha.
        let ratio = z.probability(1) / z.probability(2);
        assert!((ratio - 2f64.powf(1.5)).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let z = Zipf::new(50, 1.0).unwrap();
        let mut r = rng();
        let mut counts = vec![0u32; 51];
        for _ in 0..20_000 {
            let k = z.sample(&mut r);
            assert!((1..=50).contains(&k));
            counts[k] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > 3 * counts[25]);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for i in 1..=4 {
            assert!((z.probability(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn stepwise_fractions_hold() {
        let s = StepwiseInterval::paper();
        let mut r = rng();
        let n = 50_000;
        let mut short = 0;
        let mut long = 0;
        for _ in 0..n {
            let h = s.sample_hours(&mut r);
            assert!(h >= s.min_hours && h <= s.max_hours);
            if h < 1.0 {
                short += 1;
            } else if h > 24.0 {
                long += 1;
            }
        }
        let short_frac = short as f64 / n as f64;
        let long_frac = long as f64 / n as f64;
        assert!((short_frac - 0.05).abs() < 0.01, "short = {short_frac}");
        assert!((long_frac - 0.05).abs() < 0.01, "long = {long_frac}");
    }

    #[test]
    fn age_decay_validates_and_bounds() {
        assert!(AgeDecay::new(-1.0).is_none());
        assert!(AgeDecay::new(f64::NAN).is_none());
        let d = AgeDecay::new(1.5).unwrap();
        assert_eq!(d.gamma(), 1.5);
        let mut r = rng();
        for _ in 0..1_000 {
            let a = d.sample_age_hours(&mut r, 100.0);
            assert!((0.0..=100.0).contains(&a));
        }
        assert_eq!(d.sample_age_hours(&mut r, 0.0), 0.0);
        assert_eq!(d.sample_age_hours(&mut r, -5.0), 0.0);
    }

    #[test]
    fn age_decay_prefers_young_pages() {
        let d = AgeDecay::new(2.0).unwrap();
        let mut r = rng();
        let n = 10_000;
        let young = (0..n)
            .filter(|_| d.sample_age_hours(&mut r, 168.0) < 24.0)
            .count();
        // With gamma=2 the mass below 24h is (1 - 1/25)/(1 - 1/169) ≈ 0.966.
        assert!(young as f64 / n as f64 > 0.9, "young = {young}");
    }

    #[test]
    fn age_decay_gamma_one_branch() {
        let d = AgeDecay::new(1.0).unwrap();
        let mut r = rng();
        let mean: f64 = (0..5_000)
            .map(|_| d.sample_age_hours(&mut r, 168.0))
            .sum::<f64>()
            / 5_000.0;
        // E[age] = (span - ln(1+span)) / ln(1+span) ≈ 27.7 for span 168.
        assert!((20.0..40.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn age_decay_gamma_zero_is_uniform() {
        let d = AgeDecay::new(0.0).unwrap();
        let mut r = rng();
        let mean: f64 = (0..20_000)
            .map(|_| d.sample_age_hours(&mut r, 100.0))
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 50.0).abs() < 2.0, "mean = {mean}");
    }
}
