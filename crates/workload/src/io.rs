//! Plain-text (TSV) import/export of generated traces.
//!
//! The generators are deterministic, but exporting a trace lets other
//! tools (plotting scripts, other simulators) consume exactly the same
//! workload, and lets externally produced traces drive this simulator.
//! The format is deliberately trivial: a tagged header line, then one
//! tab-separated record per line.
//!
//! ```text
//! #pscd-pages v1
//! <id> <size_bytes> <publish_ms> <origin_id|-> <version>
//!
//! #pscd-requests v1
//! <time_ms> <server> <page>
//!
//! #pscd-subscriptions v1
//! <page> <server> <count>
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use pscd_types::{
    Bytes, PageId, PageKind, PageMeta, RequestEvent, RequestTrace, ServerId, SimTime,
    SubscriptionTable, SubscriptionTableBuilder,
};

/// Error produced while reading or writing trace files.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn parse_err(line: usize, reason: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse {
        line,
        reason: reason.into(),
    }
}

fn expect_header<R: BufRead>(reader: &mut R, expected: &str) -> Result<(), TraceIoError> {
    let mut header = String::new();
    reader.read_line(&mut header)?;
    if header.trim_end() != expected {
        return Err(parse_err(1, format!("expected header {expected:?}")));
    }
    Ok(())
}

/// Writes a page table.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_pages<W: Write>(mut writer: W, pages: &[PageMeta]) -> Result<(), TraceIoError> {
    writeln!(writer, "#pscd-pages v1")?;
    for p in pages {
        let (origin, version) = match p.kind() {
            PageKind::Original => ("-".to_owned(), 0),
            PageKind::Modified { origin, version } => (origin.index().to_string(), version),
        };
        writeln!(
            writer,
            "{}\t{}\t{}\t{}\t{}",
            p.id().index(),
            p.size().as_u64(),
            p.publish_time().as_millis(),
            origin,
            version
        )?;
    }
    Ok(())
}

/// Reads a page table written by [`write_pages`].
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] for malformed lines (including ids out
/// of dense order) and propagates I/O failures.
pub fn read_pages<R: BufRead>(mut reader: R) -> Result<Vec<PageMeta>, TraceIoError> {
    expect_header(&mut reader, "#pscd-pages v1")?;
    let mut pages = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            return Err(parse_err(lineno, "expected 5 tab-separated fields"));
        }
        let id: u32 = fields[0]
            .parse()
            .map_err(|_| parse_err(lineno, "bad page id"))?;
        if id as usize != pages.len() {
            return Err(parse_err(lineno, "page ids must be dense and in order"));
        }
        let size: u64 = fields[1]
            .parse()
            .map_err(|_| parse_err(lineno, "bad size"))?;
        if size == 0 {
            return Err(parse_err(lineno, "page size must be positive"));
        }
        let publish: u64 = fields[2]
            .parse()
            .map_err(|_| parse_err(lineno, "bad publish time"))?;
        let kind = if fields[3] == "-" {
            PageKind::Original
        } else {
            let origin: u32 = fields[3]
                .parse()
                .map_err(|_| parse_err(lineno, "bad origin id"))?;
            let version: u32 = fields[4]
                .parse()
                .map_err(|_| parse_err(lineno, "bad version"))?;
            PageKind::Modified {
                origin: PageId::new(origin),
                version,
            }
        };
        pages.push(PageMeta::new(
            PageId::new(id),
            Bytes::new(size),
            SimTime::from_millis(publish),
            kind,
        ));
    }
    Ok(pages)
}

/// Writes a request trace.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_requests<W: Write>(mut writer: W, trace: &RequestTrace) -> Result<(), TraceIoError> {
    writeln!(writer, "#pscd-requests v1")?;
    for ev in trace {
        writeln!(
            writer,
            "{}\t{}\t{}",
            ev.time.as_millis(),
            ev.server.index(),
            ev.page.index()
        )?;
    }
    Ok(())
}

/// Reads a request trace written by [`write_requests`]. Events are sorted
/// by time on load, so externally produced files need not be pre-sorted.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] for malformed lines and propagates I/O
/// failures.
pub fn read_requests<R: BufRead>(mut reader: R) -> Result<RequestTrace, TraceIoError> {
    expect_header(&mut reader, "#pscd-requests v1")?;
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(parse_err(lineno, "expected 3 tab-separated fields"));
        }
        let time: u64 = fields[0]
            .parse()
            .map_err(|_| parse_err(lineno, "bad time"))?;
        let server: u16 = fields[1]
            .parse()
            .map_err(|_| parse_err(lineno, "bad server"))?;
        let page: u32 = fields[2]
            .parse()
            .map_err(|_| parse_err(lineno, "bad page"))?;
        events.push(RequestEvent::new(
            SimTime::from_millis(time),
            ServerId::new(server),
            PageId::new(page),
        ));
    }
    Ok(RequestTrace::from_unsorted(events))
}

/// Writes a subscription table.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_subscriptions<W: Write>(
    mut writer: W,
    table: &SubscriptionTable,
) -> Result<(), TraceIoError> {
    writeln!(writer, "#pscd-subscriptions v1")?;
    for (page, server, count) in table.iter() {
        writeln!(writer, "{}\t{}\t{}", page.index(), server.index(), count)?;
    }
    Ok(())
}

/// Reads a subscription table written by [`write_subscriptions`].
/// `page_count` sizes the resulting table.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] for malformed lines or out-of-range
/// pages, and propagates I/O failures.
pub fn read_subscriptions<R: BufRead>(
    mut reader: R,
    page_count: usize,
) -> Result<SubscriptionTable, TraceIoError> {
    expect_header(&mut reader, "#pscd-subscriptions v1")?;
    let mut builder = SubscriptionTableBuilder::new(page_count);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(parse_err(lineno, "expected 3 tab-separated fields"));
        }
        let page: u32 = fields[0]
            .parse()
            .map_err(|_| parse_err(lineno, "bad page"))?;
        if page as usize >= page_count {
            return Err(parse_err(lineno, "page id out of range"));
        }
        let server: u16 = fields[1]
            .parse()
            .map_err(|_| parse_err(lineno, "bad server"))?;
        let count: u32 = fields[2]
            .parse()
            .map_err(|_| parse_err(lineno, "bad count"))?;
        builder.add(PageId::new(page), ServerId::new(server), count);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Workload, WorkloadConfig};

    fn tiny() -> Workload {
        Workload::generate(&WorkloadConfig::news_scaled(0.002)).unwrap()
    }

    #[test]
    fn pages_roundtrip() {
        let w = tiny();
        let mut buf = Vec::new();
        write_pages(&mut buf, w.pages()).unwrap();
        let back = read_pages(buf.as_slice()).unwrap();
        assert_eq!(back, w.pages());
    }

    #[test]
    fn requests_roundtrip() {
        let w = tiny();
        let mut buf = Vec::new();
        write_requests(&mut buf, w.requests()).unwrap();
        let back = read_requests(buf.as_slice()).unwrap();
        assert_eq!(&back, w.requests());
    }

    #[test]
    fn subscriptions_roundtrip() {
        let w = tiny();
        let table = w.subscriptions(0.5).unwrap();
        let mut buf = Vec::new();
        write_subscriptions(&mut buf, &table).unwrap();
        let back = read_subscriptions(buf.as_slice(), w.pages().len()).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn unsorted_request_files_are_sorted_on_load() {
        let input = "#pscd-requests v1\n5000\t1\t2\n1000\t0\t1\n";
        let trace = read_requests(input.as_bytes()).unwrap();
        assert_eq!(trace.events()[0].time, SimTime::from_millis(1000));
        assert_eq!(trace.events()[1].time, SimTime::from_millis(5000));
    }

    #[test]
    fn bad_headers_rejected() {
        assert!(read_pages("#wrong v1\n".as_bytes()).is_err());
        assert!(read_requests("".as_bytes()).is_err());
        assert!(read_subscriptions("#pscd-pages v1\n".as_bytes(), 10).is_err());
    }

    #[test]
    fn malformed_lines_report_position() {
        let input = "#pscd-requests v1\n1000\t0\t1\nnot-a-number\t0\t1\n";
        match read_requests(input.as_bytes()) {
            Err(TraceIoError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let input = "#pscd-requests v1\n1000\t0\n";
        assert!(matches!(
            read_requests(input.as_bytes()),
            Err(TraceIoError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn page_parsing_validates() {
        // Non-dense ids.
        let input = "#pscd-pages v1\n1\t100\t0\t-\t0\n";
        assert!(read_pages(input.as_bytes()).is_err());
        // Zero size.
        let input = "#pscd-pages v1\n0\t0\t0\t-\t0\n";
        assert!(read_pages(input.as_bytes()).is_err());
        // Out-of-range subscription page.
        let input = "#pscd-subscriptions v1\n99\t0\t1\n";
        assert!(read_subscriptions(input.as_bytes(), 10).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = "#pscd-requests v1\n\n1000\t0\t1\n\n";
        let trace = read_requests(input.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn error_display_and_source() {
        let e = TraceIoError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let e = parse_err(7, "bad");
        assert!(e.to_string().contains("line 7"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
