//! End-to-end workload assembly.

use serde::{Deserialize, Serialize};

use pscd_types::{
    Bytes, LiveEvent, PageMeta, PublishingStream, RequestTrace, SimTime, SubscriptionTable,
};

use crate::{
    generate_publishing_legacy, generate_publishing_threads, generate_requests_legacy,
    generate_requests_threads, generate_subscriptions_partial_threads,
    generate_subscriptions_threads, PublishingConfig, RequestConfig, WorkloadError,
};

/// Full configuration of a synthetic publish/subscribe workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkloadConfig {
    /// Publishing-stream parameters.
    pub publishing: PublishingConfig,
    /// Request-stream parameters.
    pub requests: RequestConfig,
    /// Master seed; all derived randomness is deterministic in it.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's NEWS trace at full scale (α = 1.5).
    pub fn news() -> Self {
        Self {
            publishing: PublishingConfig::paper(),
            requests: RequestConfig::news(),
            seed: 0,
        }
    }

    /// The paper's ALTERNATIVE trace at full scale (α = 1.0).
    pub fn alternative() -> Self {
        Self {
            requests: RequestConfig::alternative(),
            ..Self::news()
        }
    }

    /// A proportionally scaled-down NEWS trace for tests and benches.
    pub fn news_scaled(factor: f64) -> Self {
        Self {
            publishing: PublishingConfig::scaled(factor),
            requests: RequestConfig::scaled(factor),
            seed: 0,
        }
    }

    /// A proportionally scaled-down ALTERNATIVE trace.
    pub fn alternative_scaled(factor: f64) -> Self {
        Self {
            requests: RequestConfig {
                zipf_alpha: 1.0,
                ..RequestConfig::scaled(factor)
            },
            ..Self::news_scaled(factor)
        }
    }

    /// Returns the config with a different master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fully generated workload: page table, publishing stream and request
/// trace. Subscription tables are derived on demand per quality level so a
/// single trace can be evaluated under several SQ values, exactly as the
/// paper does in §5.4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    config: WorkloadConfig,
    pages: Vec<PageMeta>,
    publishing: PublishingStream,
    requests: RequestTrace,
}

impl Workload {
    /// Generates a workload (deterministic in `config.seed`).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for invalid configurations.
    ///
    /// # Examples
    ///
    /// ```
    /// use pscd_workload::{Workload, WorkloadConfig};
    /// let w = Workload::generate(&WorkloadConfig::news_scaled(0.01))?;
    /// assert_eq!(w.server_count(), 100);
    /// assert!(!w.requests().is_empty());
    /// # Ok::<(), pscd_workload::WorkloadError>(())
    /// ```
    pub fn generate(config: &WorkloadConfig) -> Result<Self, WorkloadError> {
        Self::generate_threads(config, 1)
    }

    /// [`Workload::generate`] on up to `threads` pool workers (`0` = auto,
    /// `1` = inline). Output is bit-identical at every thread count: every
    /// random draw comes from a per-entity substream ([`crate::seeds`]),
    /// so parallelism only changes who computes what, never what is
    /// computed.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for invalid configurations.
    pub fn generate_threads(
        config: &WorkloadConfig,
        threads: usize,
    ) -> Result<Self, WorkloadError> {
        if config.publishing.horizon != config.requests.horizon {
            return Err(WorkloadError::invalid(
                "horizon",
                "publishing.horizon == requests.horizon",
            ));
        }
        let publishing = generate_publishing_threads(&config.publishing, config.seed, threads)?;
        let requests =
            generate_requests_threads(&publishing.pages, &config.requests, config.seed, threads)?;
        Ok(Self {
            config: config.clone(),
            pages: publishing.pages,
            publishing: publishing.stream,
            requests,
        })
    }

    /// Compatibility constructor: generates the workload with the
    /// pre-substream single-stream generators
    /// ([`generate_publishing_legacy`]/[`generate_requests_legacy`]), which
    /// reproduce traces generated before the parallel cold path landed.
    /// Inherently serial; new code should use [`Workload::generate`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for invalid configurations.
    pub fn generate_legacy(config: &WorkloadConfig) -> Result<Self, WorkloadError> {
        if config.publishing.horizon != config.requests.horizon {
            return Err(WorkloadError::invalid(
                "horizon",
                "publishing.horizon == requests.horizon",
            ));
        }
        let publishing = generate_publishing_legacy(&config.publishing, config.seed)?;
        let requests = generate_requests_legacy(&publishing.pages, &config.requests, config.seed)?;
        Ok(Self {
            config: config.clone(),
            pages: publishing.pages,
            publishing: publishing.stream,
            requests,
        })
    }

    /// Assembles a workload from externally produced parts (e.g. traces
    /// loaded through [`crate::io`]). The configuration supplies the
    /// horizon, server count and seed used by derived artifacts
    /// (subscription tables, capacities).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if the publishing stream
    /// does not cover exactly the page table or the request trace
    /// references unknown pages/servers.
    pub fn from_parts(
        config: WorkloadConfig,
        pages: Vec<PageMeta>,
        publishing: PublishingStream,
        requests: RequestTrace,
    ) -> Result<Self, WorkloadError> {
        if publishing.len() != pages.len() {
            return Err(WorkloadError::invalid(
                "publishing",
                "one publish event per page",
            ));
        }
        let mut seen = vec![false; pages.len()];
        for ev in &publishing {
            match seen.get_mut(ev.page.as_usize()) {
                Some(slot) if !*slot => *slot = true,
                _ => {
                    return Err(WorkloadError::invalid(
                        "publishing",
                        "each page published exactly once",
                    ))
                }
            }
        }
        if requests
            .validate(pages.len(), config.requests.servers)
            .is_err()
        {
            return Err(WorkloadError::invalid(
                "requests",
                "events within the page table and server count",
            ));
        }
        Ok(Self {
            config,
            pages,
            publishing,
            requests,
        })
    }

    /// The generating configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The page table, indexed by page id.
    pub fn pages(&self) -> &[PageMeta] {
        &self.pages
    }

    /// The time-ordered publishing stream.
    pub fn publishing(&self) -> &PublishingStream {
        &self.publishing
    }

    /// The time-ordered request trace.
    pub fn requests(&self) -> &RequestTrace {
        &self.requests
    }

    /// Number of proxy servers.
    pub fn server_count(&self) -> u16 {
        self.config.requests.servers
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> SimTime {
        self.config.publishing.horizon
    }

    /// Derives the subscription table for a target quality (eq. 7);
    /// deterministic in the master seed and `quality`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] unless `0 < quality <= 1`.
    pub fn subscriptions(&self, quality: f64) -> Result<SubscriptionTable, WorkloadError> {
        self.subscriptions_threads(quality, 1)
    }

    /// [`Workload::subscriptions`] on up to `threads` pool workers (`0` =
    /// auto, `1` = inline). Output is bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] unless `0 < quality <= 1`.
    pub fn subscriptions_threads(
        &self,
        quality: f64,
        threads: usize,
    ) -> Result<SubscriptionTable, WorkloadError> {
        generate_subscriptions_threads(
            &self.requests,
            self.pages.len(),
            quality,
            self.config.seed ^ quality.to_bits(),
            threads,
        )
    }

    /// Like [`Workload::subscriptions`], but only a `coverage` fraction of
    /// the (page, server) request pairs carries subscriptions — the
    /// paper's future-work scenario where some requests are not driven by
    /// notifications.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for out-of-range
    /// parameters.
    pub fn subscriptions_partial(
        &self,
        quality: f64,
        coverage: f64,
    ) -> Result<SubscriptionTable, WorkloadError> {
        generate_subscriptions_partial_threads(
            &self.requests,
            self.pages.len(),
            quality,
            coverage,
            self.config.seed ^ quality.to_bits() ^ coverage.to_bits().rotate_left(17),
            1,
        )
    }

    /// Flattens the workload into the live-service event stream: every
    /// subscription as an up-front [`LiveEvent::Subscribe`] control
    /// message (in the table's page-major order), followed by the
    /// publishing stream and request trace merged in time order with the
    /// same tie-break trace compilation uses (a publish precedes a request
    /// at the same instant). Feeding this stream to the service therefore
    /// reproduces, event for event, the timeline trace compilation
    /// (`CompiledTrace::compile` in `pscd-sim`) builds for batch replay.
    pub fn live_events(&self, subs: &SubscriptionTable) -> Vec<LiveEvent> {
        let sub_count = subs.iter().count();
        let mut events =
            Vec::with_capacity(sub_count + self.publishing.len() + self.requests.len());
        events.extend(
            subs.iter()
                .map(|(page, server, count)| LiveEvent::Subscribe {
                    page,
                    server,
                    count,
                }),
        );
        let mut pubs = self.publishing.iter().peekable();
        let mut reqs = self.requests.iter().peekable();
        loop {
            let publish_first = match (pubs.peek(), reqs.peek()) {
                (Some(p), Some(r)) => p.time <= r.time,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if publish_first {
                let p = pubs.next().expect("peeked");
                events.push(LiveEvent::Publish {
                    time: p.time,
                    page: p.page,
                });
            } else {
                let r = reqs.next().expect("peeked");
                events.push(LiveEvent::Request {
                    time: r.time,
                    server: r.server,
                    page: r.page,
                });
            }
        }
        events
    }

    /// Per-server unique bytes requested over the whole trace — the basis
    /// for the paper's cache-capacity settings.
    pub fn unique_bytes_per_server(&self) -> Vec<Bytes> {
        self.requests
            .unique_bytes_per_server(&self.pages, self.server_count())
    }

    /// The one-page minimum capacity granted to servers whose trace
    /// requested nothing — exposed so trace compilation can reproduce
    /// [`Workload::cache_capacities`] without the workload in hand.
    pub fn min_cache_capacity(&self) -> Bytes {
        Bytes::new(self.config.publishing.max_page_bytes)
    }

    /// Per-server cache capacities at a fraction of unique requested bytes
    /// (the paper evaluates 1%, 5% and 10%). Servers that requested nothing
    /// get a one-page minimum so they remain functional.
    pub fn cache_capacities(&self, fraction: f64) -> Vec<Bytes> {
        let min = self.min_cache_capacity();
        self.unique_bytes_per_server()
            .into_iter()
            .map(|b| {
                let c = b.scaled(fraction);
                if c.is_zero() {
                    min
                } else {
                    c
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workload {
        Workload::generate(&WorkloadConfig::news_scaled(0.01)).unwrap()
    }

    #[test]
    fn generates_consistent_tables() {
        let w = tiny();
        assert_eq!(w.pages().len(), w.publishing().len());
        assert!(w
            .requests()
            .validate(w.pages().len(), w.server_count())
            .is_ok());
        assert_eq!(w.horizon(), SimTime::from_days(7));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::generate(&WorkloadConfig::news_scaled(0.01)).unwrap();
        let b = Workload::generate(&WorkloadConfig::news_scaled(0.01)).unwrap();
        assert_eq!(a, b);
        let c = Workload::generate(&WorkloadConfig::news_scaled(0.01).with_seed(99)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn subscription_quality_one_matches_requests() {
        let w = tiny();
        let subs = w.subscriptions(1.0).unwrap();
        let mut req_pairs = std::collections::HashMap::new();
        for ev in w.requests() {
            *req_pairs.entry((ev.page, ev.server)).or_insert(0u32) += 1;
        }
        for ((page, server), count) in req_pairs {
            assert_eq!(subs.count(page, server), count);
        }
    }

    #[test]
    fn different_qualities_differ() {
        let w = tiny();
        let hi = w.subscriptions(1.0).unwrap();
        let lo = w.subscriptions(0.25).unwrap();
        let hi_total: u64 = hi.iter().map(|(_, _, c)| c as u64).sum();
        let lo_total: u64 = lo.iter().map(|(_, _, c)| c as u64).sum();
        assert!(lo_total > hi_total);
    }

    #[test]
    fn capacities_track_unique_bytes() {
        let w = tiny();
        let unique = w.unique_bytes_per_server();
        let caps = w.cache_capacities(0.05);
        assert_eq!(unique.len(), caps.len());
        for (u, c) in unique.iter().zip(&caps) {
            if !u.is_zero() {
                assert_eq!(*c, u.scaled(0.05));
            } else {
                assert!(!c.is_zero());
            }
        }
    }

    #[test]
    fn from_parts_roundtrips_generated_workloads() {
        let w = tiny();
        let rebuilt = Workload::from_parts(
            w.config().clone(),
            w.pages().to_vec(),
            w.publishing().clone(),
            w.requests().clone(),
        )
        .unwrap();
        assert_eq!(rebuilt, w);
    }

    #[test]
    fn from_parts_validates() {
        let w = tiny();
        // Dropping a publish event breaks the one-event-per-page rule.
        let mut events: Vec<_> = w.publishing().iter().copied().collect();
        events.pop();
        let bad = pscd_types::PublishingStream::from_unsorted(events);
        assert!(Workload::from_parts(
            w.config().clone(),
            w.pages().to_vec(),
            bad,
            w.requests().clone(),
        )
        .is_err());
        // Duplicated publish event.
        let mut events: Vec<_> = w.publishing().iter().copied().collect();
        let dup = events[0];
        let last = events.len() - 1;
        events[last] = dup;
        let bad = pscd_types::PublishingStream::from_unsorted(events);
        assert!(Workload::from_parts(
            w.config().clone(),
            w.pages().to_vec(),
            bad,
            w.requests().clone(),
        )
        .is_err());
        // Request referencing a missing page.
        let mut cfg = w.config().clone();
        cfg.requests.servers = 1; // most events now out of range
        assert!(Workload::from_parts(
            cfg,
            w.pages().to_vec(),
            w.publishing().clone(),
            w.requests().clone(),
        )
        .is_err());
    }

    #[test]
    fn live_events_cover_the_whole_workload_in_time_order() {
        let w = tiny();
        let subs = w.subscriptions(1.0).unwrap();
        let events = w.live_events(&subs);
        let sub_count = subs.iter().count();
        assert_eq!(
            events.len(),
            sub_count + w.publishing().len() + w.requests().len()
        );
        // All subscribes lead, in table order.
        for (ev, (page, server, count)) in events.iter().zip(subs.iter()) {
            assert_eq!(
                *ev,
                LiveEvent::Subscribe {
                    page,
                    server,
                    count
                }
            );
        }
        // The rest is time-ordered, with publishes winning ties.
        let mut last = SimTime::ZERO;
        let mut publishes = 0;
        let mut requests = 0;
        for ev in &events[sub_count..] {
            let time = match ev {
                LiveEvent::Subscribe { .. } => panic!("subscribe after the timeline started"),
                LiveEvent::Publish { time, .. } => {
                    publishes += 1;
                    *time
                }
                LiveEvent::Request { time, .. } => {
                    requests += 1;
                    *time
                }
            };
            assert!(time >= last, "timeline out of order");
            last = time;
        }
        assert_eq!(publishes, w.publishing().len());
        assert_eq!(requests, w.requests().len());
    }

    #[test]
    fn mismatched_horizons_rejected() {
        let mut cfg = WorkloadConfig::news_scaled(0.01);
        cfg.requests.horizon = SimTime::from_days(3);
        assert!(Workload::generate(&cfg).is_err());
    }

    #[test]
    fn alternative_trace_is_less_skewed() {
        let news = Workload::generate(&WorkloadConfig::news_scaled(0.02)).unwrap();
        let alt = Workload::generate(&WorkloadConfig::alternative_scaled(0.02)).unwrap();
        let top_share = |w: &Workload| {
            let mut counts = vec![0u64; w.pages().len()];
            for ev in w.requests() {
                counts[ev.page.as_usize()] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let total: u64 = counts.iter().sum();
            counts[..10.min(counts.len())].iter().sum::<u64>() as f64 / total as f64
        };
        assert!(top_share(&news) > top_share(&alt));
    }
}
