//! Golden tests for the shipped scenario library: every scenario's
//! workload digest is pinned, so any change to the generators, the seed
//! derivations, the time-warp, or the scenario parameters themselves
//! shows up as a failed digest — the cross-PR stability contract for
//! config-driven workloads. Plus the text codec's round-trip and
//! strict-parsing (unknown fields rejected) guarantees.

use pscd_workload::{ScenarioConfig, TimeWarp};

/// Pinned `(name, digest)` pairs for the shipped library. A digest is an
/// FNV-1a fold over the full generated workload (pages, publish stream,
/// warped request trace) — update ONLY when a generator change is
/// intentional, and say so in the commit.
const GOLDEN: [(&str, u64); 4] = [
    ("news-baseline", 0x34c1_a420_70fd_fc85),
    ("catalog-churn", 0xa5ba_f361_0cbc_ecc9),
    ("flash-crowds", 0xef3b_d8e8_bc3e_7083),
    ("diurnal", 0x311a_99d8_8adb_e28c),
];

#[test]
fn shipped_scenario_digests_are_pinned() {
    let shipped = ScenarioConfig::shipped();
    assert_eq!(shipped.len(), GOLDEN.len(), "library size changed");
    for (scenario, (name, digest)) in shipped.iter().zip(GOLDEN) {
        assert_eq!(scenario.name, name, "library order changed");
        assert_eq!(
            scenario.digest().unwrap(),
            digest,
            "{name}: workload digest drifted from its pinned value"
        );
    }
}

#[test]
fn digests_are_thread_and_rebuild_stable() {
    let scenario = ScenarioConfig::flash_crowds();
    let again = scenario.digest().unwrap();
    assert_eq!(again, scenario.digest().unwrap());
    // Thread count must not leak into the generated workload.
    let w1 = scenario.build_threads(1).unwrap();
    let w4 = scenario.build_threads(4).unwrap();
    assert_eq!(w1, w4);
}

#[test]
fn text_codec_round_trips_every_shipped_scenario() {
    for scenario in ScenarioConfig::shipped() {
        let text = scenario.to_text();
        let parsed =
            ScenarioConfig::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert_eq!(parsed, scenario, "{} round-trip drifted", scenario.name);
        // Round-tripping the parse re-emits identical text.
        assert_eq!(parsed.to_text(), text);
    }
}

#[test]
fn unknown_fields_are_rejected_not_ignored() {
    let mut text = ScenarioConfig::news_baseline().to_text();
    text.push_str("surprise_knob = 3\n");
    let err = ScenarioConfig::from_text(&text).expect_err("unknown field must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("surprise_knob"),
        "error must name the field: {msg}"
    );

    // Unknown keys inside an inline record are rejected too.
    let crowd = ScenarioConfig::flash_crowds()
        .to_text()
        .replace("boost", "bosst");
    assert!(ScenarioConfig::from_text(&crowd).is_err());

    // Duplicates are rejected, comments and blank lines are not.
    let dup = format!("{}seed = 7\n", ScenarioConfig::news_baseline().to_text());
    assert!(ScenarioConfig::from_text(&dup).is_err());
    let commented = format!(
        "# a comment\n\n{}",
        ScenarioConfig::news_baseline().to_text()
    );
    assert_eq!(
        ScenarioConfig::from_text(&commented).unwrap(),
        ScenarioConfig::news_baseline()
    );
}

#[test]
fn scenarios_build_valid_workloads_with_expected_shapes() {
    for scenario in ScenarioConfig::shipped() {
        let w = scenario
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert!(!w.pages().is_empty(), "{}", scenario.name);
        assert!(!w.requests().is_empty(), "{}", scenario.name);
        // Catalog churn publishes far more versions per original than the
        // news baseline.
        if scenario.name == "catalog-churn" {
            let news = ScenarioConfig::news_baseline().build().unwrap();
            assert!(w.pages().len() > 2 * news.pages().len());
        }
    }
}

#[test]
fn time_warp_is_monotone_for_every_shipped_scenario() {
    for scenario in ScenarioConfig::shipped() {
        let Some(warp): Option<TimeWarp> = scenario.time_warp().unwrap() else {
            continue;
        };
        let horizon = scenario.workload_config().unwrap().requests.horizon;
        let mut prev = pscd_types::SimTime::ZERO;
        for i in 0..=1000u64 {
            let t = pscd_types::SimTime::from_millis(horizon.as_millis() * i / 1000);
            let out = warp.apply(t);
            assert!(out >= prev, "{}: warp not monotone at {t:?}", scenario.name);
            assert!(out < horizon, "{}: warp escaped the horizon", scenario.name);
            prev = out;
        }
    }
}
