//! Property tests for the workload generators.

use proptest::prelude::*;

use pscd_workload::{
    generate_publishing, generate_requests, generate_subscriptions_partial, PublishingConfig,
    RequestConfig,
};

fn publishing_config() -> impl Strategy<Value = PublishingConfig> {
    (10usize..80, 0usize..40, 0usize..300).prop_map(|(distinct, updated_raw, extra)| {
        let updated = updated_raw.min(distinct);
        PublishingConfig {
            distinct_pages: distinct,
            updated_pages: updated,
            total_pages: distinct + if updated == 0 { 0 } else { extra },
            ..PublishingConfig::paper()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The publishing generator hits its page count exactly, keeps
    /// versions after their originals, and stays within the horizon.
    #[test]
    fn publishing_invariants(cfg in publishing_config(), seed in 0u64..500) {
        let out = generate_publishing(&cfg, seed).unwrap();
        prop_assert_eq!(out.pages.len(), cfg.total_pages);
        prop_assert_eq!(out.stream.len(), cfg.total_pages);
        let originals = out.pages.iter().filter(|p| p.kind().is_original()).count();
        prop_assert_eq!(originals, cfg.distinct_pages);
        for p in &out.pages {
            prop_assert!(p.publish_time() < cfg.horizon);
            prop_assert!(p.size().as_u64() >= cfg.min_page_bytes);
            prop_assert!(p.size().as_u64() <= cfg.max_page_bytes);
            if let Some(origin) = p.kind().origin() {
                prop_assert!(origin.as_usize() < cfg.distinct_pages);
                prop_assert!(
                    p.publish_time() > out.pages[origin.as_usize()].publish_time()
                );
            }
        }
        // Stream is sorted.
        let times: Vec<_> = out.stream.iter().map(|e| e.time).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The request generator hits its request count exactly and respects
    /// publish times, horizons and the server population.
    #[test]
    fn request_invariants(
        seed in 0u64..200,
        servers in 1u16..30,
        total in 50u64..2_000,
        alpha in proptest::sample::select(vec![1.0f64, 1.5]),
        shift in proptest::sample::select(vec![0.0f64, 50.0, 100.0]),
    ) {
        let pcfg = PublishingConfig {
            distinct_pages: 50,
            updated_pages: 20,
            total_pages: 150,
            ..PublishingConfig::paper()
        };
        let pages = generate_publishing(&pcfg, seed).unwrap().pages;
        let rcfg = RequestConfig {
            servers,
            total_requests: total,
            zipf_alpha: alpha,
            zipf_shift: shift,
            ..RequestConfig::news()
        };
        let trace = generate_requests(&pages, &rcfg, seed).unwrap();
        prop_assert_eq!(trace.len() as u64, total);
        prop_assert!(trace.validate(pages.len(), servers).is_ok());
        for ev in &trace {
            let page = &pages[ev.page.as_usize()];
            prop_assert!(ev.time >= page.publish_time());
            prop_assert!(ev.time < rcfg.horizon);
        }
    }

    /// Subscription counts are never below request counts (SQ <= 1 means
    /// at least as many subscribers as readers), and SQ = 1 is exact.
    #[test]
    fn subscription_counts_bound_requests(
        seed in 0u64..200,
        quality in proptest::sample::select(vec![0.25f64, 0.5, 0.75, 1.0]),
        coverage in proptest::sample::select(vec![0.5f64, 1.0]),
    ) {
        let pcfg = PublishingConfig {
            distinct_pages: 40,
            updated_pages: 10,
            total_pages: 80,
            ..PublishingConfig::paper()
        };
        let pages = generate_publishing(&pcfg, seed).unwrap().pages;
        let rcfg = RequestConfig {
            servers: 10,
            total_requests: 500,
            ..RequestConfig::news()
        };
        let trace = generate_requests(&pages, &rcfg, seed).unwrap();
        let table =
            generate_subscriptions_partial(&trace, pages.len(), quality, coverage, seed)
                .unwrap();
        let mut requests: std::collections::HashMap<(u32, u16), u32> =
            std::collections::HashMap::new();
        for ev in &trace {
            *requests.entry((ev.page.index(), ev.server.index())).or_default() += 1;
        }
        for (page, server, count) in table.iter() {
            let p = requests[&(page.index(), server.index())];
            prop_assert!(count >= p, "subs {count} < requests {p}");
            if quality == 1.0 {
                prop_assert_eq!(count, p);
            }
        }
        if coverage == 1.0 {
            // Every request pair has subscriptions.
            prop_assert_eq!(table.iter().count(), requests.len());
        } else {
            prop_assert!(table.iter().count() <= requests.len());
        }
    }
}
