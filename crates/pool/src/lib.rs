//! A minimal indexed fork/join pool over the vendored `crossbeam` scope.
//!
//! Every level of parallelism in `pscd` — shards *within* one simulation
//! run, jobs *across* a parameter sweep, and the cold-path fan-outs
//! (workload substreams, trace compilation, per-source shortest paths) —
//! reduces to the same shape: `jobs` independent index-addressed
//! computations whose results must come back in index order so downstream
//! merges are deterministic. [`parallel_indexed`] is that shape, once;
//! [`parallel_chunked`] is its batched variant for fine-grained work.
//!
//! The crate sits at the bottom of the workspace (only the vendored
//! `crossbeam` below it) so that `pscd-workload` and `pscd-topology` can
//! parallelize generation without depending on the simulator;
//! `pscd_sim::pool` re-exports it under the pre-existing path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod spans {
    //! Opt-in per-task span collection for pool jobs.
    //!
    //! The pool sits below `pscd-obs` in the workspace, so it cannot emit
    //! into a [`TraceSink`](https://docs.rs) directly; instead this module
    //! keeps a tiny global store of [`TaskSpan`]s that a driver enables
    //! around a cold-path phase ([`enable`] with the sink's epoch,
    //! [`set_phase`] per fan-out) and drains back out ([`disable`]) to
    //! convert into whatever timeline format it likes. When disabled —
    //! the default, and the state every simulation run sees — the only
    //! cost at a job boundary is one relaxed atomic load: no clock reads,
    //! no locks, no allocation.
    //!
    //! Timestamps are nanoseconds since the caller-supplied epoch so the
    //! spans line up with other tracks recorded against the same epoch.

    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    /// One pool job execution: which worker ran which job index of which
    /// phase, and when (nanoseconds since the [`enable`] epoch).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct TaskSpan {
        /// The phase label current at [`set_phase`] time.
        pub phase: String,
        /// Worker index within the pool (`0..threads`).
        pub worker: usize,
        /// Job index within the fan-out (`0..jobs`).
        pub job: usize,
        /// Job start, ns since the epoch.
        pub start_ns: u64,
        /// Job end, ns since the epoch.
        pub end_ns: u64,
    }

    struct State {
        epoch: Instant,
        phase: String,
        spans: Vec<TaskSpan>,
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static STATE: Mutex<Option<State>> = Mutex::new(None);

    /// Starts collecting task spans, timestamped relative to `epoch`.
    ///
    /// Collection is process-global (the pool's fan-outs are themselves
    /// global); drivers enable it around the cold path, not inside
    /// replay. Re-enabling discards anything previously collected.
    pub fn enable(epoch: Instant) {
        let mut state = STATE.lock().expect("span state poisoned");
        *state = Some(State {
            epoch,
            phase: String::from("pool"),
            spans: Vec::new(),
        });
        ENABLED.store(true, Ordering::Release);
    }

    /// Labels all subsequently recorded spans with `label` (e.g.
    /// `"cold.generate.news"`). No-op while disabled.
    pub fn set_phase(label: &str) {
        if !is_enabled() {
            return;
        }
        if let Some(state) = STATE.lock().expect("span state poisoned").as_mut() {
            state.phase.clear();
            state.phase.push_str(label);
        }
    }

    /// Whether task spans are being collected right now.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Stops collecting and returns everything recorded since [`enable`].
    pub fn disable() -> Vec<TaskSpan> {
        ENABLED.store(false, Ordering::Release);
        let mut state = STATE.lock().expect("span state poisoned");
        state.take().map(|s| s.spans).unwrap_or_default()
    }

    /// Records one executed job. Called by the pool with timestamps taken
    /// around `f(i)`; silently dropped if collection was disabled in
    /// between.
    pub(crate) fn record(worker: usize, job: usize, start: Instant, end: Instant) {
        if let Some(state) = STATE.lock().expect("span state poisoned").as_mut() {
            let start_ns = start.saturating_duration_since(state.epoch).as_nanos() as u64;
            let end_ns = end.saturating_duration_since(state.epoch).as_nanos() as u64;
            state.spans.push(TaskSpan {
                phase: state.phase.clone(),
                worker,
                job,
                start_ns,
                end_ns: end_ns.max(start_ns),
            });
        }
    }

    /// Runs `f`, recording it as `(worker, job)` when collection is on.
    #[inline]
    pub(crate) fn run_timed<T>(worker: usize, job: usize, f: impl FnOnce() -> T) -> T {
        if !is_enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        record(worker, job, start, Instant::now());
        out
    }
}

/// Resolves a requested thread count against the number of independent
/// jobs: `0` means "auto" (the machine's available parallelism), any
/// explicit count is honored as-is (oversubscription included — the
/// differential tests rely on `threads = 4` exercising the sharded path
/// even on a single-core runner), and the result never exceeds `jobs`
/// (extra threads would idle) or drops below 1.
///
/// # Examples
///
/// ```
/// use pscd_pool::effective_threads;
///
/// assert_eq!(effective_threads(1, 100), 1);
/// assert_eq!(effective_threads(4, 100), 4);
/// assert_eq!(effective_threads(4, 3), 3);
/// assert_eq!(effective_threads(0, 0), 1);
/// assert!(effective_threads(0, 100) >= 1);
/// ```
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let base = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    base.min(jobs).max(1)
}

/// Computes `f(0), f(1), …, f(jobs - 1)` on up to `threads` worker
/// threads and returns the results **in index order**, regardless of
/// which worker computed what when.
///
/// Workers claim indices from a shared atomic counter (work stealing), so
/// uneven job sizes balance themselves. `threads` is resolved through
/// [`effective_threads`] (`0` = auto); with one effective thread or fewer
/// than two jobs everything runs inline on the caller's thread — the
/// sequential path stays allocation- and synchronization-free.
///
/// A panicking job propagates the panic to the caller (std scoped-thread
/// semantics).
///
/// # Examples
///
/// ```
/// use pscd_pool::parallel_indexed;
///
/// let squares = parallel_indexed(5, 4, |i| i * i);
/// assert_eq!(squares, [0, 1, 4, 9, 16]);
/// ```
pub fn parallel_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads, jobs);
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(|i| spans::run_timed(0, i, || f(i))).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        let (next, slots, f) = (&next, &slots, &f);
        for w in 0..threads {
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = spans::run_timed(w, i, || f(i));
                *slots[i].lock().expect("slot poisoned") = Some(out);
            });
        }
    })
    .expect("shim scope never errors");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

/// Splits `0..len` into contiguous chunks of at most `chunk` items, maps
/// each chunk through `f` on up to `threads` workers, and concatenates
/// the per-chunk outputs **in chunk order**.
///
/// This is the shape of the cold path's fine-grained fan-outs: thousands
/// of per-entity jobs far too small to schedule individually. The chunk
/// size is part of the call site's contract, *not* derived from the
/// thread count, so the chunk boundaries — and therefore any per-chunk
/// RNG substreams — are identical at every thread count.
///
/// With one effective thread (`threads = 1`, or `0` = auto on a
/// single-core machine) everything runs inline on the caller's thread.
///
/// # Examples
///
/// ```
/// use pscd_pool::parallel_chunked;
///
/// let out = parallel_chunked(10, 4, 2, |range| range.collect::<Vec<_>>());
/// assert_eq!(out, (0..10).collect::<Vec<_>>());
/// ```
pub fn parallel_chunked<T, F>(len: usize, chunk: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let chunk = chunk.max(1);
    let jobs = len.div_ceil(chunk);
    if jobs <= 1 {
        return f(0..len);
    }
    let parts = parallel_indexed(jobs, threads, |j| {
        let start = j * chunk;
        f(start..(start + chunk).min(len))
    });
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Runs `producer` concurrently with `consumers` consumer closures and
/// returns the consumers' outputs in index order.
///
/// Unlike [`parallel_indexed`], which inlines everything when it has one
/// job or one thread, this shape **always** puts the producer on its own
/// scoped thread: the point of a producer/consumer pipeline is overlap
/// (and, for a bounded handoff queue, deadlock-freedom — an inlined
/// producer could never fill the queue the inlined consumer is waiting
/// on). Consumer `0` runs on the calling thread; consumers `1..` get
/// scoped threads of their own. The call returns once the producer and
/// every consumer have finished, and propagates any panic.
pub fn producer_consumers<P, C, T>(producer: P, consumers: usize, consume: C) -> Vec<T>
where
    P: FnOnce() + Send,
    C: Fn(usize) -> T + Sync,
    T: Send,
{
    let consumers = consumers.max(1);
    let slots: Vec<Mutex<Option<T>>> = (0..consumers).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        let (slots, consume) = (&slots, &consume);
        scope.spawn(move |_| producer());
        for (j, slot) in slots.iter().enumerate().skip(1) {
            scope.spawn(move |_| {
                *slot.lock().expect("slot poisoned") = Some(consume(j));
            });
        }
        *slots[0].lock().expect("slot poisoned") = Some(consume(0));
    })
    .expect("shim scope never errors");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every consumer ran exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 9] {
            let out = parallel_indexed(17, threads, |i| i * 3);
            assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = parallel_indexed(0, 4, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscription_is_fine() {
        // More threads than jobs: the extra workers find the counter
        // exhausted and exit.
        let out = parallel_indexed(2, 64, |i| i + 1);
        assert_eq!(out, [1, 2]);
    }

    #[test]
    fn task_spans_capture_every_job_when_enabled() {
        // Collection is process-global, so other tests running
        // concurrently may also record; assert on presence, not count.
        spans::enable(std::time::Instant::now());
        spans::set_phase("test.fanout");
        let out = parallel_indexed(6, 3, |i| i + 10);
        let recorded = spans::disable();
        assert_eq!(out, [10, 11, 12, 13, 14, 15]);
        for job in 0..6 {
            let span = recorded
                .iter()
                .find(|s| s.job == job && s.phase == "test.fanout")
                .unwrap_or_else(|| panic!("job {job} missing from {recorded:?}"));
            assert!(span.end_ns >= span.start_ns);
            assert!(span.worker < 3);
        }
        // Disabled again: nothing records, nothing to drain.
        let _ = parallel_indexed(3, 2, |i| i);
        assert!(spans::disable().is_empty());
        assert!(!spans::is_enabled());
    }

    #[test]
    fn producer_runs_concurrently_with_consumers() {
        use std::sync::mpsc;
        // A rendezvous: each consumer blocks until the producer sends it a
        // value, which can only work if the producer really runs on its
        // own thread while consumers wait.
        for consumers in [1, 3] {
            let (senders, receivers): (Vec<_>, Vec<_>) =
                (0..consumers).map(|_| mpsc::channel::<usize>()).unzip();
            let receivers: Vec<Mutex<mpsc::Receiver<usize>>> =
                receivers.into_iter().map(Mutex::new).collect();
            let out = producer_consumers(
                move || {
                    for (j, tx) in senders.iter().enumerate() {
                        tx.send(j * 7).expect("consumer alive");
                    }
                },
                consumers,
                |j| {
                    receivers[j]
                        .lock()
                        .expect("receiver lock")
                        .recv()
                        .expect("producer sends one value per consumer")
                },
            );
            assert_eq!(out, (0..consumers).map(|j| j * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        assert_eq!(effective_threads(3, 2), 2);
        assert_eq!(effective_threads(0, 1), 1);
        let auto = effective_threads(0, 1_000);
        assert!(auto >= 1);
        // Explicit counts may oversubscribe the machine.
        assert_eq!(effective_threads(16, 1_000), 16);
    }
}
