//! Property-based tests over the cross-crate invariants.

use proptest::prelude::*;

use pscd::cache::{CachePolicy, CacheStore, GdStar, Gds, LfuDa, Lru};
use pscd::{Bytes, PageId, PageRef, StrategyKind};

/// A scripted cache operation.
#[derive(Debug, Clone)]
enum Op {
    Push { page: u32, subs: u32 },
    Access { page: u32, subs: u32 },
    Invalidate { page: u32 },
}

fn op_strategy(pages: u32) -> impl proptest::strategy::Strategy<Value = Op> {
    prop_oneof![
        4 => (0..pages, 0u32..20).prop_map(|(page, subs)| Op::Push { page, subs }),
        4 => (0..pages, 0u32..20).prop_map(|(page, subs)| Op::Access { page, subs }),
        1 => (0..pages).prop_map(|page| Op::Invalidate { page }),
    ]
}

/// Deterministic page size/cost derived from the id, so every operation
/// honors the "stable PageRef" contract.
fn page_ref(page: u32) -> PageRef {
    let size = 16 + (page as u64 * 37) % 240;
    let cost = 1.0 + (page % 5) as f64;
    PageRef::new(PageId::new(page), Bytes::new(size), cost)
}

fn all_kinds() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 0.5 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 1.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No strategy ever exceeds its capacity or loses byte accounting,
    /// under arbitrary interleavings of pushes and accesses.
    #[test]
    fn strategies_never_exceed_capacity(
        ops in proptest::collection::vec(op_strategy(40), 1..400),
        capacity in 64u64..2048,
    ) {
        for kind in all_kinds() {
            let mut s = kind.build(Bytes::new(capacity));
            let mut ev = Vec::new();
            for op in &ops {
                match *op {
                    Op::Push { page, subs } => {
                        let _ = s.on_push(&page_ref(page), subs, &mut ev);
                    }
                    Op::Access { page, subs } => {
                        let _ = s.on_access(&page_ref(page), subs, &mut ev);
                    }
                    Op::Invalidate { page } => {
                        let was = s.contains(PageId::new(page));
                        let dropped = s.invalidate(PageId::new(page));
                        prop_assert_eq!(was, dropped, "{}", s.name());
                        prop_assert!(!s.contains(PageId::new(page)), "{}", s.name());
                    }
                }
                prop_assert!(
                    s.used() <= s.capacity(),
                    "{}: used {} > capacity {}",
                    s.name(), s.used(), s.capacity()
                );
            }
        }
    }

    /// `would_store` is a faithful predictor of `on_push` for every
    /// push-capable strategy (the Pushing-When-Necessary contract).
    #[test]
    fn would_store_predicts_on_push(
        ops in proptest::collection::vec(op_strategy(30), 1..200),
        capacity in 64u64..1024,
    ) {
        for kind in all_kinds() {
            let mut s = kind.build(Bytes::new(capacity));
            if !s.uses_push() {
                continue;
            }
            let mut ev = Vec::new();
            for op in &ops {
                match *op {
                    Op::Push { page, subs } => {
                        let predicted = s.would_store(&page_ref(page), subs);
                        let stored = s.on_push(&page_ref(page), subs, &mut ev).is_stored();
                        prop_assert_eq!(
                            predicted, stored,
                            "{}: would_store lied for page {}", s.name(), page
                        );
                    }
                    Op::Access { page, subs } => {
                        let _ = s.on_access(&page_ref(page), subs, &mut ev);
                    }
                    Op::Invalidate { page } => {
                        let _ = s.invalidate(PageId::new(page));
                    }
                }
            }
        }
    }

    /// A hit is reported exactly when the page was cached beforehand.
    #[test]
    fn hits_iff_cached(
        ops in proptest::collection::vec(op_strategy(30), 1..200),
        capacity in 64u64..1024,
    ) {
        for kind in all_kinds() {
            let mut s = kind.build(Bytes::new(capacity));
            let mut ev = Vec::new();
            for op in &ops {
                match *op {
                    Op::Push { page, subs } => {
                        let outcome = s.on_push(&page_ref(page), subs, &mut ev);
                        if outcome.is_stored() {
                            prop_assert!(s.contains(PageId::new(page)), "{}", s.name());
                        }
                    }
                    Op::Access { page, subs } => {
                        let was_cached = s.contains(PageId::new(page));
                        let outcome = s.on_access(&page_ref(page), subs, &mut ev);
                        prop_assert_eq!(
                            outcome.is_hit(), was_cached,
                            "{}: hit does not match cache state", s.name()
                        );
                    }
                    Op::Invalidate { page } => {
                        let _ = s.invalidate(PageId::new(page));
                    }
                }
            }
        }
    }

    /// The cache store's min-heap always pops values in non-decreasing
    /// order, regardless of interleaved inserts/updates/removes.
    #[test]
    fn cache_store_pops_in_value_order(
        inserts in proptest::collection::vec((0u32..50, 1u64..64, 0.0f64..100.0), 1..100),
    ) {
        let mut store = CacheStore::new(Bytes::new(1 << 20));
        for &(page, size, value) in &inserts {
            store.insert(PageId::new(page), Bytes::new(size), value);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some(p) = store.pop_min() {
            prop_assert!(p.value >= last);
            last = p.value;
        }
        prop_assert!(store.is_empty());
        prop_assert_eq!(store.used(), Bytes::ZERO);
    }

    /// Classic policies agree on trivial workloads: a second access to the
    /// same page is always a hit when it fits.
    #[test]
    fn second_access_hits(page in 0u32..1000, size in 1u64..512) {
        let pr = PageRef::new(PageId::new(page), Bytes::new(size), 1.0);
        let capacity = Bytes::new(1024);
        let mut policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(Lru::new(capacity)),
            Box::new(Gds::new(capacity)),
            Box::new(LfuDa::new(capacity)),
            Box::new(GdStar::new(capacity, 2.0)),
        ];
        let mut ev = Vec::new();
        for p in &mut policies {
            prop_assert!(p.access(&pr, &mut ev).is_miss());
            prop_assert!(p.access(&pr, &mut ev).is_hit(), "{}", p.name());
        }
    }
}
