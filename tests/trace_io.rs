//! Export → import → simulate round-trip through the TSV trace format.

use pscd::workload::io::{
    read_pages, read_requests, read_subscriptions, write_pages, write_requests, write_subscriptions,
};
use pscd::{simulate, FetchCosts, SimOptions, StrategyKind, Workload, WorkloadConfig};

#[test]
fn exported_traces_simulate_identically() {
    let original = Workload::generate(&WorkloadConfig::news_scaled(0.005)).unwrap();
    let subs = original.subscriptions(1.0).unwrap();

    // Export everything to in-memory TSV …
    let mut pages_tsv = Vec::new();
    let mut requests_tsv = Vec::new();
    let mut subs_tsv = Vec::new();
    write_pages(&mut pages_tsv, original.pages()).unwrap();
    write_requests(&mut requests_tsv, original.requests()).unwrap();
    write_subscriptions(&mut subs_tsv, &subs).unwrap();

    // … import it back …
    let pages = read_pages(pages_tsv.as_slice()).unwrap();
    let requests = read_requests(requests_tsv.as_slice()).unwrap();
    let subs_back = read_subscriptions(subs_tsv.as_slice(), pages.len()).unwrap();

    // … rebuild a workload (publishing events are derivable from pages) …
    let publish_events: Vec<_> = pages
        .iter()
        .map(|p| pscd::types::PublishEvent::new(p.publish_time(), p.id()))
        .collect();
    let publishing = pscd::types::PublishingStream::from_unsorted(publish_events);
    let rebuilt =
        Workload::from_parts(original.config().clone(), pages, publishing, requests).unwrap();

    // … and simulate both: identical results.
    let costs = FetchCosts::uniform(original.server_count());
    let opt = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    let a = simulate(&original, &subs, &costs, &opt).unwrap();
    let b = simulate(&rebuilt, &subs_back, &costs, &opt).unwrap();
    assert_eq!(a, b);
    assert_eq!(subs_back, subs);
}
