//! The paper's qualitative results, checked at a reduced (but not tiny)
//! scale: every claim the evaluation section makes about *who wins and
//! where* must hold on the regenerated workload.
//!
//! Scale 0.05 keeps the suite fast in debug builds while preserving the
//! distributional structure; EXPERIMENTS.md records the full-scale runs.

use pscd::experiments::{ExperimentContext, Fig3, Fig4, Fig5, Fig6, Fig7, Table2, Trace};
use pscd::PushScheme;

fn ctx() -> ExperimentContext {
    ExperimentContext::scaled(0.05).unwrap()
}

#[test]
fn fig3_dual_family_beats_gdstar_and_dclap_leads_dm() {
    let fig = Fig3::run(&ctx()).unwrap();
    for trace in [Trace::News, Trace::Alternative] {
        for cap in [0.01, 0.05, 0.10] {
            let gd = fig.hit_ratio(trace, cap, "GD*").unwrap();
            // "All the Dual* approaches have better hit ratio than GD*."
            for name in ["DM", "DC-FP", "DC-AP", "DC-LAP"] {
                assert!(
                    fig.hit_ratio(trace, cap, name).unwrap() > gd,
                    "{name} <= GD* at {cap} on {}",
                    trace.name()
                );
            }
        }
        // "DC-LAP outperforms DM" (checked at 5%/10%; the 1% case needs
        // full-scale caches — see full_scale.rs).
        for cap in [0.05, 0.10] {
            let dm = fig.hit_ratio(trace, cap, "DM").unwrap();
            let lap = fig.hit_ratio(trace, cap, "DC-LAP").unwrap();
            assert!(lap > dm, "DC-LAP <= DM at {cap} on {}", trace.name());
        }
    }
}

#[test]
fn fig4_overall_orderings() {
    let fig = Fig4::run(&ctx()).unwrap();
    for trace in [Trace::News, Trace::Alternative] {
        for cap in [0.05, 0.10] {
            let gd = fig.hit_ratio(trace, cap, "GD*").unwrap();
            let sub = fig.hit_ratio(trace, cap, "SUB").unwrap();
            let sg1 = fig.hit_ratio(trace, cap, "SG1").unwrap();
            let sg2 = fig.hit_ratio(trace, cap, "SG2").unwrap();
            let sr = fig.hit_ratio(trace, cap, "SR").unwrap();
            let lap = fig.hit_ratio(trace, cap, "DC-LAP").unwrap();
            // "SG2 and SR provide the highest hit ratios."
            assert!(sg2 > sg1 && sr > sg1, "{} cap {cap}", trace.name());
            // "SG1 has a lower hit ratio than SG2 and SR" but beats SUB.
            assert!(sg1 > sub, "{} cap {cap}", trace.name());
            // All subscription schemes beat the baseline at 5%+.
            for h in [sub, sg1, sg2, sr, lap] {
                assert!(h > gd, "{} cap {cap}", trace.name());
            }
        }
        // "All the other new approaches outperform SUB under any setting."
        for cap in [0.01, 0.05, 0.10] {
            let sub = fig.hit_ratio(trace, cap, "SUB").unwrap();
            for name in ["SG1", "SG2", "SR", "DC-LAP"] {
                assert!(
                    fig.hit_ratio(trace, cap, name).unwrap() > sub,
                    "{name} <= SUB at {cap} on {}",
                    trace.name()
                );
            }
        }
    }
    // (The paper's one exception — SUB < GD* at 1% on NEWS — needs the
    // full-scale trace; see full_scale.rs.)
}

#[test]
fn table2_gains_much_larger_for_alternative() {
    let t = Table2::run(&ctx()).unwrap();
    for name in ["SUB", "SG1", "SG2", "SR", "DM", "DC-FP", "DC-LAP"] {
        let news = t.improvement(Trace::News, name).unwrap();
        let alt = t.improvement(Trace::Alternative, name).unwrap();
        assert!(
            alt > 1.2 * news.max(0.0),
            "{name}: ALT gain {alt:.0}% not clearly above NEWS gain {news:.0}%"
        );
    }
    // SG2 ranks above SG1; both positive on both traces.
    for trace in [Trace::News, Trace::Alternative] {
        let sg1 = t.improvement(trace, "SG1").unwrap();
        let sg2 = t.improvement(trace, "SG2").unwrap();
        assert!(sg2 > sg1 && sg1 > 0.0, "{}", trace.name());
    }
}

#[test]
fn fig5_sq_sensitivity() {
    let fig = Fig5::run(&ctx()).unwrap();
    for trace in [Trace::News, Trace::Alternative] {
        let sr_1 = fig.hit_ratio(trace, 1.0, "SR").unwrap();
        let sr_25 = fig.hit_ratio(trace, 0.25, "SR").unwrap();
        let sg1_1 = fig.hit_ratio(trace, 1.0, "SG1").unwrap();
        let sg1_25 = fig.hit_ratio(trace, 0.25, "SG1").unwrap();
        // "SR is most affected by SQ and its superiority disappears."
        assert!(sr_1 - sr_25 > 0.10, "{}", trace.name());
        // "Both SG1 and DC-LAP are not sensitive to SQ."
        assert!((sg1_1 - sg1_25).abs() < 0.10, "{}", trace.name());
        let lap_1 = fig.hit_ratio(trace, 1.0, "DC-LAP").unwrap();
        let lap_25 = fig.hit_ratio(trace, 0.25, "DC-LAP").unwrap();
        assert!((lap_1 - lap_25).abs() < 0.10, "{}", trace.name());
        // SG1 and DC-LAP stay well above the baseline at SQ = 0.25.
        let gd = fig.hit_ratio(trace, 0.25, "GD*").unwrap();
        assert!(sg1_25 > gd && lap_25 > gd, "{}", trace.name());
    }
}

#[test]
fn fig6_temporal_behaviour() {
    let fig = Fig6::run(&ctx()).unwrap();
    for trace in [Trace::News, Trace::Alternative] {
        // "The hit ratio of SUB drops with time."
        let sub_early = fig.mean_over(trace, "SUB", 0..48);
        let sub_late = fig.mean_over(trace, "SUB", 120..168);
        assert!(sub_early > sub_late + 5.0, "{}", trace.name());
        // "SG2 keeps a high hit ratio": above GD* and SUB in steady state.
        let sg2_late = fig.mean_over(trace, "SG2", 120..168);
        let gd_late = fig.mean_over(trace, "GD*", 120..168);
        assert!(sg2_late > gd_late, "{}", trace.name());
        assert!(sg2_late > sub_late, "{}", trace.name());
    }
}

#[test]
fn fig7_traffic_overhead() {
    let fig = Fig7::run(&ctx()).unwrap();
    let always = PushScheme::Always;
    let necessary = PushScheme::WhenNecessary;
    // "SUB always introduces the highest traffic overhead."
    for scheme in [always, necessary] {
        let sub = fig.total_pages(scheme, "SUB").unwrap();
        assert!(sub > fig.total_pages(scheme, "SG2").unwrap(), "{scheme:?}");
        assert!(sub > fig.total_pages(scheme, "GD*").unwrap(), "{scheme:?}");
    }
    // "The traffic overhead of GD* does not change with pushing scheme."
    assert_eq!(
        fig.total_pages(always, "GD*"),
        fig.total_pages(necessary, "GD*")
    );
    // "SG2 is not sensitive to pushing scheme" (within 10%).
    let sg2_a = fig.total_pages(always, "SG2").unwrap() as f64;
    let sg2_n = fig.total_pages(necessary, "SG2").unwrap() as f64;
    assert!((sg2_a - sg2_n).abs() / sg2_a < 0.10, "{sg2_a} vs {sg2_n}");
    // "The difference between SUB and GD* is smaller with
    // Pushing-When-Necessary than with Always-Pushing."
    let gap_always = fig.total_pages(always, "SUB").unwrap() as i64
        - fig.total_pages(always, "GD*").unwrap() as i64;
    let gap_necessary = fig.total_pages(necessary, "SUB").unwrap() as i64
        - fig.total_pages(necessary, "GD*").unwrap() as i64;
    assert!(
        gap_necessary < gap_always,
        "{gap_necessary} >= {gap_always}"
    );
    // "SG2's traffic overhead is comparable to GD*" (within 50%).
    let gd = fig.total_pages(always, "GD*").unwrap() as f64;
    assert!(sg2_a < 1.5 * gd, "SG2 {sg2_a} vs GD* {gd}");
}
