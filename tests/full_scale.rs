//! Full paper-scale shape checks, ignored by default (run them with
//! `cargo test --release -- --ignored`): these claims depend on the
//! absolute cache sizes of the 195k-request trace.

use pscd::experiments::{ExperimentContext, Fig3, Fig4, Trace};

#[test]
#[ignore = "full-scale run; use cargo test --release -- --ignored"]
fn sub_trails_gdstar_only_at_one_percent_on_news() {
    let ctx = ExperimentContext::paper_scale().unwrap();
    let fig = Fig4::run(&ctx).unwrap();
    // "The only case in which any of our new approaches are worse than
    // GD* is SUB when the cache capacity is low (1%) on NEWS."
    let gd = fig.hit_ratio(Trace::News, 0.01, "GD*").unwrap();
    let sub = fig.hit_ratio(Trace::News, 0.01, "SUB").unwrap();
    assert!(sub < gd, "SUB {sub} should trail GD* {gd} at 1% on NEWS");
    // ...but not on ALTERNATIVE, and not at higher capacities.
    let gd_alt = fig.hit_ratio(Trace::Alternative, 0.01, "GD*").unwrap();
    let sub_alt = fig.hit_ratio(Trace::Alternative, 0.01, "SUB").unwrap();
    assert!(sub_alt > gd_alt);
    for cap in [0.05, 0.10] {
        let gd = fig.hit_ratio(Trace::News, cap, "GD*").unwrap();
        let sub = fig.hit_ratio(Trace::News, cap, "SUB").unwrap();
        assert!(sub > gd, "cap {cap}");
    }
}

#[test]
#[ignore = "full-scale run; use cargo test --release -- --ignored"]
fn dclap_leads_the_dual_family_at_every_capacity() {
    let ctx = ExperimentContext::paper_scale().unwrap();
    let fig = Fig3::run(&ctx).unwrap();
    for trace in [Trace::News, Trace::Alternative] {
        for cap in [0.01, 0.05, 0.10] {
            let dm = fig.hit_ratio(trace, cap, "DM").unwrap();
            let lap = fig.hit_ratio(trace, cap, "DC-LAP").unwrap();
            assert!(lap > dm, "DC-LAP <= DM at {cap} on {}", trace.name());
        }
    }
}
