//! End-to-end integration: workload → topology → simulation → metrics.

use pscd::{
    simulate, FetchCosts, GraphModel, PushScheme, SimOptions, StrategyKind, TopologyBuilder,
    Workload, WorkloadConfig,
};

fn workload() -> Workload {
    Workload::generate(&WorkloadConfig::news_scaled(0.01)).unwrap()
}

#[test]
fn full_pipeline_runs_on_topology_costs() {
    let w = workload();
    let topo = TopologyBuilder::new(w.server_count() as usize + 1)
        .model(GraphModel::waxman())
        .seed(7)
        .build()
        .unwrap();
    let costs = FetchCosts::from_topology(&topo, 0).unwrap();
    let subs = w.subscriptions(1.0).unwrap();
    let r = simulate(
        &w,
        &subs,
        &costs,
        &SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
    )
    .unwrap();
    assert_eq!(r.requests, w.requests().len() as u64);
    assert!(r.hit_ratio() > 0.0 && r.hit_ratio() <= 1.0);
}

#[test]
fn barabasi_albert_topology_works_too() {
    let w = workload();
    let topo = TopologyBuilder::new(w.server_count() as usize + 1)
        .model(GraphModel::barabasi_albert())
        .seed(11)
        .build()
        .unwrap();
    let costs = FetchCosts::from_topology(&topo, 0).unwrap();
    let subs = w.subscriptions(0.75).unwrap();
    let r = simulate(
        &w,
        &subs,
        &costs,
        &SimOptions::at_capacity(StrategyKind::dc_lap(2.0), 0.05),
    )
    .unwrap();
    assert!(r.hits > 0);
}

#[test]
fn traffic_accounting_is_exact_for_every_strategy() {
    let w = workload();
    let subs = w.subscriptions(1.0).unwrap();
    let costs = FetchCosts::uniform(w.server_count());
    let total_matched_pairs: u64 = w
        .pages()
        .iter()
        .map(|p| subs.matched_servers(p.id()).len() as u64)
        .sum();
    for kind in [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ] {
        for scheme in [PushScheme::Always, PushScheme::WhenNecessary] {
            let options = SimOptions {
                strategy: kind,
                capacity_fraction: 0.05,
                scheme,
                crash: None,
                invalidate_stale: false,
                threads: 1,
            };
            let r = simulate(&w, &subs, &costs, &options).unwrap();
            // The sharded runner reproduces the sequential accounting
            // bit for bit, so every check below covers both paths.
            let sharded = simulate(&w, &subs, &costs, &options.with_threads(4)).unwrap();
            assert_eq!(r, sharded, "{} / {scheme:?}", kind.name());
            // Misses and fetches balance exactly.
            assert_eq!(
                r.traffic.fetched_pages,
                r.requests - r.hits,
                "{} / {scheme:?}",
                kind.name()
            );
            // Pushes never exceed the matched (page, server) pairs.
            assert!(
                r.traffic.pushed_pages <= total_matched_pairs,
                "{} / {scheme:?}",
                kind.name()
            );
            // Hourly series are consistent with global counters.
            assert_eq!(r.hourly.hits.iter().sum::<u64>(), r.hits);
            assert_eq!(
                r.hourly.fetched_pages.iter().sum::<u64>(),
                r.traffic.fetched_pages
            );
            assert_eq!(
                r.hourly.pushed_bytes.iter().sum::<u64>(),
                r.traffic.pushed_bytes.as_u64()
            );
            // Per-server counters add up to the totals.
            let (h, q) = r
                .per_server
                .iter()
                .fold((0u64, 0u64), |(h, q), &(sh, sq)| (h + sh, q + sq));
            assert_eq!((h, q), (r.hits, r.requests));
        }
    }
}

#[test]
fn when_necessary_only_drops_declined_transfers() {
    // For every strategy, Pushing-When-Necessary must keep the hit ratio
    // identical to Always-Pushing (the proxy stores exactly the same
    // pages) while never pushing more.
    let w = workload();
    let subs = w.subscriptions(1.0).unwrap();
    let costs = FetchCosts::uniform(w.server_count());
    for kind in [
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ] {
        let run = |scheme| {
            simulate(
                &w,
                &subs,
                &costs,
                &SimOptions {
                    strategy: kind,
                    capacity_fraction: 0.05,
                    scheme,
                    crash: None,
                    invalidate_stale: false,
                    threads: 1,
                },
            )
            .unwrap()
        };
        let always = run(PushScheme::Always);
        let necessary = run(PushScheme::WhenNecessary);
        assert_eq!(
            always.hits,
            necessary.hits,
            "{}: hit ratio must not depend on the pushing scheme",
            kind.name()
        );
        assert!(
            necessary.traffic.pushed_pages <= always.traffic.pushed_pages,
            "{}",
            kind.name()
        );
    }
}

#[test]
fn deterministic_across_runs_and_seed_sensitivity() {
    let cfg = WorkloadConfig::news_scaled(0.01);
    let a = Workload::generate(&cfg).unwrap();
    let b = Workload::generate(&cfg).unwrap();
    assert_eq!(a, b);
    let costs = FetchCosts::uniform(a.server_count());
    let subs_a = a.subscriptions(1.0).unwrap();
    let subs_b = b.subscriptions(1.0).unwrap();
    assert_eq!(subs_a, subs_b);
    let opt = SimOptions::at_capacity(StrategyKind::DcAp { beta: 2.0 }, 0.05);
    assert_eq!(
        simulate(&a, &subs_a, &costs, &opt).unwrap(),
        simulate(&b, &subs_b, &costs, &opt).unwrap()
    );
    // A different seed changes the workload (and almost surely the result).
    let c = Workload::generate(&cfg.clone().with_seed(1234)).unwrap();
    assert_ne!(a, c);
}

#[test]
fn capacity_monotonicity_for_subscription_strategies() {
    let w = workload();
    let subs = w.subscriptions(1.0).unwrap();
    let costs = FetchCosts::uniform(w.server_count());
    for kind in [StrategyKind::Sg2 { beta: 2.0 }, StrategyKind::dc_lap(2.0)] {
        let h: Vec<f64> = [0.01, 0.05, 0.10]
            .iter()
            .map(|&c| {
                simulate(&w, &subs, &costs, &SimOptions::at_capacity(kind, c))
                    .unwrap()
                    .hit_ratio()
            })
            .collect();
        assert!(
            h[0] <= h[1] && h[1] <= h[2],
            "{}: hit ratio should grow with capacity: {h:?}",
            kind.name()
        );
    }
}
