//! Integration of the content-based matching engine with the workload's
//! content model and the delivery engine.

use pscd::matching::EngineMatcher;
use pscd::workload::{ContentModel, CATEGORIES};
use pscd::{
    Content, DeliveryEngine, Matcher, Predicate, PushScheme, ServerId, Strategy, StrategyKind,
    Subscription, SubscriptionTable, Value, Workload, WorkloadConfig,
};

fn workload() -> Workload {
    Workload::generate(&WorkloadConfig::news_scaled(0.01)).unwrap()
}

#[test]
fn engine_matcher_agrees_with_manual_evaluation() {
    let w = workload();
    let model = ContentModel::new(3);
    let mut matcher = EngineMatcher::new(w.server_count());

    // One category subscription per server, round-robin over categories.
    let mut subs_at: Vec<Subscription> = Vec::new();
    for s in 0..w.server_count() {
        let category = CATEGORIES[s as usize % CATEGORIES.len()];
        let sub = Subscription::new(vec![Predicate::eq("category", Value::str(category))]);
        matcher.subscribe(ServerId::new(s), sub.clone()).unwrap();
        subs_at.push(sub);
    }
    for page in w.pages().iter().take(300) {
        matcher.register_page(page.id(), model.content_for(page));
    }
    for page in w.pages().iter().take(300) {
        let content: Content = model.content_for(page);
        let matched = matcher.matched_servers(page.id());
        for s in 0..w.server_count() {
            let expected = subs_at[s as usize].matches(&content);
            let got = matched.iter().any(|&(srv, _)| srv == ServerId::new(s));
            assert_eq!(expected, got, "page {} server {s}", page.id());
            assert_eq!(
                matcher.match_count(page.id(), ServerId::new(s)),
                u32::from(expected)
            );
        }
    }
}

#[test]
fn table_matcher_and_engine_matcher_drive_the_same_delivery_api() {
    // The broker accepts matched-server lists from either matcher.
    let w = workload();
    let table = w.subscriptions(1.0).unwrap();
    let capacities = w.cache_capacities(0.05);

    let strategies: Vec<Box<dyn Strategy>> = capacities
        .iter()
        .map(|&c| StrategyKind::Sg1 { beta: 2.0 }.build(c))
        .collect();
    let mut engine = DeliveryEngine::new(
        strategies,
        vec![1.0; w.server_count() as usize],
        PushScheme::Always,
    )
    .unwrap();

    let from_table: &SubscriptionTable = &table;
    let mut pushed = 0u64;
    for ev in w.publishing().iter().take(500) {
        let meta = &w.pages()[ev.page.as_usize()];
        let records = engine.publish(meta, from_table.matched_servers(ev.page));
        pushed += records.iter().filter(|r| r.transferred).count() as u64;
    }
    assert!(pushed > 0);
    assert_eq!(engine.total_traffic().pushed_pages, pushed);
}

#[test]
fn modified_versions_match_like_their_originals() {
    let w = workload();
    let model = ContentModel::new(9);
    let mut matcher = EngineMatcher::new(1);
    // Subscribe to every category so every page matches; counts must be
    // equal for originals and their modified versions.
    for cat in CATEGORIES {
        matcher
            .subscribe(
                ServerId::new(0),
                Subscription::new(vec![Predicate::eq("category", Value::str(cat))]),
            )
            .unwrap();
    }
    for page in w.pages() {
        matcher.register_page(page.id(), model.content_for(page));
    }
    for page in w.pages() {
        if let Some(origin) = page.kind().origin() {
            assert_eq!(
                matcher.match_count(page.id(), ServerId::new(0)),
                matcher.match_count(origin, ServerId::new(0)),
                "version {} vs origin {origin}",
                page.id()
            );
        }
    }
}
